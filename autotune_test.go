// Tests for the machine-calibrated auto-tuning surface: plan/static
// agreement (bit-for-bit), profile round-trips through the public API,
// explicit knobs overriding the planner, and the argument validation the
// tuner added to Recommend.
package partsort

import (
	"path/filepath"
	"slices"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/tune"
)

// quickTestProfile calibrates once per test binary with the reduced
// probe budget, lazily so test runs that never touch auto-tuning pay
// nothing.
var (
	profileOnce sync.Once
	profileVal  *MachineProfile
)

func quickTestProfile() *MachineProfile {
	profileOnce.Do(func() {
		profileVal = tune.Calibrate(tune.Config{Quick: true})
	})
	return profileVal
}

// TestAutoTuneMatchesStatic is the agreement witness of the acceptance
// criteria: on distinct keys (a permutation, so the sorted order of both
// columns is unique) every algorithm must produce bit-for-bit the same
// output auto-tuned as with the static defaults, whatever knobs the
// planner picked.
func TestAutoTuneMatchesStatic(t *testing.T) {
	n := 1 << 15
	baseKeys := gen.Permutation[uint64](n, 9)
	baseVals := RIDs[uint64](n)
	algos := []struct {
		name string
		run  func(keys, vals []uint64, opt *SortOptions)
	}{
		{"LSB", SortLSB[uint64]},
		{"MSB", SortMSB[uint64]},
		{"CMP", SortCMP[uint64]},
	}
	for _, a := range algos {
		t.Run(a.name, func(t *testing.T) {
			sk, sv := slices.Clone(baseKeys), slices.Clone(baseVals)
			a.run(sk, sv, &SortOptions{})

			var st SortStats
			tk, tv := slices.Clone(baseKeys), slices.Clone(baseVals)
			a.run(tk, tv, &SortOptions{AutoTune: true, Profile: quickTestProfile(), Stats: &st})

			if !slices.Equal(sk, tk) || !slices.Equal(sv, tv) {
				t.Fatal("auto-tuned output differs from static output")
			}
			if st.Plan == nil {
				t.Fatal("auto-tuned run did not record its plan in Stats.Plan")
			}
			if st.Plan.RadixBits < 1 || st.Plan.RadixBits > 16 || st.Plan.Threads < 1 {
				t.Fatalf("recorded plan has invalid knobs: %+v", st.Plan)
			}
		})
	}
}

// TestAutoTuneStableAndSkewed covers the cases where outputs need not be
// bit-for-bit comparable across knob choices: LSB's stability contract
// must survive tuning, and skewed duplicate-heavy inputs must come back
// sorted permutations.
func TestAutoTuneStableAndSkewed(t *testing.T) {
	n := 1 << 15
	keys := gen.ZipfKeys[uint64](n, 1<<30, 1.2, 4)
	vals := RIDs[uint64](n)
	origK, origV := slices.Clone(keys), slices.Clone(vals)

	sk, sv := slices.Clone(keys), slices.Clone(vals)
	SortLSB(sk, sv, &SortOptions{AutoTune: true, Profile: quickTestProfile()})
	if !IsStableSorted(sk, sv) {
		t.Fatal("auto-tuned LSB lost stability")
	}

	var st SortStats
	algo := Sort(keys, vals, false, false, &SortOptions{AutoTune: true, Profile: quickTestProfile(), Stats: &st})
	if !IsSorted(keys) || !SameMultiset(keys, vals, origK, origV) {
		t.Fatal("auto-tuned Sort did not produce a sorted permutation")
	}
	if st.Plan == nil {
		t.Fatal("auto-tuned Sort did not record a plan")
	}
	if got := st.Plan.Algo; string(got) != algo.String() {
		t.Fatalf("Sort returned %v but the plan says %s", algo, got)
	}
}

// TestAutoTuneExplicitKnobsWin pins the precedence rule: a knob the
// caller sets explicitly is never overridden by the planner. A 16-bit
// domain sorted with RadixBits 5 must do ceil(16/5) = 4 passes, where
// the planner's default would do 2.
func TestAutoTuneExplicitKnobsWin(t *testing.T) {
	n := 1 << 16
	keys := gen.Permutation[uint32](n, 7)
	vals := RIDs[uint32](n)
	var st SortStats
	SortLSB(keys, vals, &SortOptions{AutoTune: true, Profile: quickTestProfile(), RadixBits: 5, Stats: &st})
	if !IsSorted(keys) {
		t.Fatal("not sorted")
	}
	if st.Passes != 4 {
		t.Fatalf("explicit RadixBits 5 over a 16-bit domain should do 4 passes, did %d", st.Passes)
	}
	if st.Plan == nil {
		t.Fatal("plan not recorded")
	}
}

// TestAutoTuneSmallInputSkipsPlanning: below the planning threshold the
// sort must still work and Stats.Plan stays nil (no sampling, no probe).
func TestAutoTuneSmallInputSkipsPlanning(t *testing.T) {
	n := 1 << 10
	keys := gen.Uniform[uint64](n, 0, 11)
	vals := RIDs[uint64](n)
	var st SortStats
	SortMSB(keys, vals, &SortOptions{AutoTune: true, Profile: quickTestProfile(), Stats: &st})
	if !IsSorted(keys) {
		t.Fatal("not sorted")
	}
	if st.Plan != nil {
		t.Fatalf("tiny input should skip planning, got plan %+v", st.Plan)
	}
}

// TestTrySortAutoTune: the error-returning API honors AutoTune too.
func TestTrySortAutoTune(t *testing.T) {
	n := 1 << 14
	keys := gen.Uniform[uint32](n, 0, 13)
	vals := RIDs[uint32](n)
	if err := TrySortLSB(keys, vals, &SortOptions{AutoTune: true, Profile: quickTestProfile()}); err != nil {
		t.Fatalf("TrySortLSB with AutoTune: %v", err)
	}
	if !IsSorted(keys) {
		t.Fatal("not sorted")
	}
}

// TestProfilePublicRoundTrip exercises the full public calibration
// workflow: Calibrate installs a valid profile, Save/LoadMachineProfile
// round-trips it, and SetMachineProfile rejects junk.
func TestProfilePublicRoundTrip(t *testing.T) {
	p := Calibrate()
	if err := p.Validate(); err != nil {
		t.Fatalf("Calibrate returned an invalid profile: %v", err)
	}
	path := filepath.Join(t.TempDir(), "profile.json")
	if err := p.Save(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	q, err := LoadMachineProfile(path)
	if err != nil {
		t.Fatalf("LoadMachineProfile: %v", err)
	}
	if q.SeqReadGBps != p.SeqReadGBps || len(q.Scatter64) != len(p.Scatter64) {
		t.Fatal("loaded profile differs from the calibrated one")
	}
	if err := SetMachineProfile(&MachineProfile{}); err == nil {
		t.Fatal("SetMachineProfile accepted an empty profile")
	}
	if err := SetMachineProfile(p); err != nil {
		t.Fatalf("SetMachineProfile rejected a valid profile: %v", err)
	}
}

// TestOptionsProfileValidation: a malformed SortOptions.Profile is an
// argument error — *ArgError from the Try API, the same panic from the
// legacy one — before any sorting starts.
func TestOptionsProfileValidation(t *testing.T) {
	keys := []uint32{3, 1, 2}
	vals := []uint32{0, 1, 2}
	err := TrySortLSB(keys, vals, &SortOptions{Profile: &MachineProfile{}})
	var ae *ArgError
	if !asArgError(err, &ae) || ae.Field != "Profile" {
		t.Fatalf("want *ArgError on Profile, got %v", err)
	}
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("SortLSB accepted a malformed Profile")
		}
	}()
	SortLSB(keys, vals, &SortOptions{Profile: &MachineProfile{}})
}

// asArgError unwraps err into an *ArgError (errors.As without the import
// dance in a test file).
func asArgError(err error, target **ArgError) bool {
	if ae, ok := err.(*ArgError); ok {
		*target = ae
		return true
	}
	return false
}

// TestRecommendValidatesWorkload pins the validation the tuner PR added:
// Recommend used to silently accept empty problems and key widths like
// 17 bits and hand back a recommendation computed from garbage.
func TestRecommendValidatesWorkload(t *testing.T) {
	bad := []Workload{
		{N: 0, KeyBits: 32},
		{N: -5, KeyBits: 64},
		{N: 100, KeyBits: 17},
		{N: 100, KeyBits: 64, DomainBits: 65},
		{N: 100, KeyBits: 64, DomainBits: -1},
	}
	for _, w := range bad {
		func() {
			defer func() {
				r := recover()
				if _, ok := r.(*ArgError); !ok {
					t.Fatalf("Recommend(%+v) did not panic *ArgError (got %v)", w, r)
				}
			}()
			Recommend(w)
		}()
	}
	// Boundary cases stay accepted: KeyBits 0 means unknown, DomainBits
	// 0 and 64 are the documented ends of the range.
	for _, w := range []Workload{
		{N: 1},
		{N: 1 << 20, KeyBits: 32, DomainBits: 0},
		{N: 1 << 20, KeyBits: 64, DomainBits: 64},
	} {
		Recommend(w)
	}
}

// TestSortEmptyInput: empty problems are trivially sorted; Sort must not
// route them into Recommend's N >= 1 validation.
func TestSortEmptyInput(t *testing.T) {
	if got := Sort([]uint32{}, []uint32{}, false, false, nil); got != LSB {
		t.Fatalf("empty Sort returned %v", got)
	}
	if got := Sort([]uint64{}, []uint64{}, true, true, &SortOptions{AutoTune: true}); got != LSB {
		t.Fatalf("empty auto-tuned Sort returned %v", got)
	}
}

// BenchmarkAutoTune compares each algorithm's static-default path against
// the auto-tuned one on the same input — the measurement behind the
// "never slower by more than 10%" acceptance bound (EXPERIMENTS.md,
// BENCH_PR4.json). The tuned arm pays its real overhead: sampling and
// planning run inside the timed region every iteration.
func BenchmarkAutoTune(b *testing.B) {
	n := benchSortN
	baseKeys := gen.Uniform[uint64](n, 0, 21)
	baseVals := RIDs[uint64](n)
	w := NewWorkspace()
	defer w.Close()
	prof := quickTestProfile()

	algos := []struct {
		name string
		run  func(keys, vals []uint64, opt *SortOptions)
	}{
		{"LSB", SortLSB[uint64]},
		{"MSB", SortMSB[uint64]},
		{"CMP", SortCMP[uint64]},
	}
	for _, a := range algos {
		for _, tuned := range []bool{false, true} {
			name := a.name + "/static"
			if tuned {
				name = a.name + "/tuned"
			}
			b.Run(name, func(b *testing.B) {
				keys := make([]uint64, n)
				vals := make([]uint64, n)
				opt := &SortOptions{Workspace: w}
				if tuned {
					opt = &SortOptions{Workspace: w, AutoTune: true, Profile: prof}
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					copy(keys, baseKeys)
					copy(vals, baseVals)
					a.run(keys, vals, opt)
				}
				reportMtps(b, n)
			})
		}
	}
}
