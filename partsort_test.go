package partsort

import (
	"sort"
	"testing"

	"repro/internal/gen"
)

func TestPublicPartition(t *testing.T) {
	n := 1 << 14
	keys := gen.Uniform[uint32](n, 0, 1)
	vals := RIDs[uint32](n)
	dstK := make([]uint32, n)
	dstV := make([]uint32, n)
	fn := Radix[uint32](0, 8)
	hist := Partition(keys, vals, dstK, dstV, fn, 4)
	if len(hist) != 256 {
		t.Fatalf("histogram size %d", len(hist))
	}
	o := 0
	for p, h := range hist {
		for i := o; i < o+h; i++ {
			if fn.Partition(dstK[i]) != p {
				t.Fatal("misplaced tuple")
			}
		}
		o += h
	}
	if !SameMultiset(keys, vals, dstK, dstV) {
		t.Fatal("multiset changed")
	}
}

func TestPublicPartitionInPlaceBothLayers(t *testing.T) {
	for _, n := range []int{1 << 10, 1 << 15} { // below and above the cache threshold
		keys := gen.Uniform[uint64](n, 0, 3)
		vals := RIDs[uint64](n)
		origK := append([]uint64(nil), keys...)
		origV := append([]uint64(nil), vals...)
		fn := Hash[uint64](16)
		hist := PartitionInPlace(keys, vals, fn, 1<<12)
		o := 0
		for p, h := range hist {
			for i := o; i < o+h; i++ {
				if fn.Partition(keys[i]) != p {
					t.Fatal("misplaced tuple")
				}
			}
			o += h
		}
		if !SameMultiset(origK, origV, keys, vals) {
			t.Fatal("multiset changed")
		}
	}
}

func TestPublicPartitionInPlaceShared(t *testing.T) {
	n := 1 << 14
	keys := gen.Uniform[uint32](n, 0, 5)
	vals := RIDs[uint32](n)
	origK := append([]uint32(nil), keys...)
	origV := append([]uint32(nil), vals...)
	fn := Hash[uint32](8)
	hist := PartitionInPlaceShared(keys, vals, fn, 4)
	o := 0
	for p, h := range hist {
		for i := o; i < o+h; i++ {
			if fn.Partition(keys[i]) != p {
				t.Fatal("misplaced tuple")
			}
		}
		o += h
	}
	if !SameMultiset(origK, origV, keys, vals) {
		t.Fatal("multiset changed")
	}
}

func TestPublicPartitionBlocks(t *testing.T) {
	n := 1 << 14
	keys := gen.Uniform[uint32](n, 0, 7)
	vals := RIDs[uint32](n)
	origK := append([]uint32(nil), keys...)
	origV := append([]uint32(nil), vals...)
	fn := Radix[uint32](0, 4)
	bl := PartitionBlocks(keys, vals, fn, 256, 2)
	counts := bl.Counts()
	total := 0
	var allK, allV []uint32
	for p := range counts {
		bl.ForEach(p, func(ks, vs []uint32) {
			for _, k := range ks {
				if fn.Partition(k) != p {
					t.Fatal("misplaced tuple in block")
				}
			}
			allK = append(allK, ks...)
			allV = append(allV, vs...)
		})
		total += counts[p]
	}
	if total != n || !SameMultiset(origK, origV, allK, allV) {
		t.Fatal("block lists lost tuples")
	}
	starts := bl.Compact(2)
	if starts[len(starts)-1] != n {
		t.Fatal("compact lost tuples")
	}
	for p := 0; p+1 < len(starts); p++ {
		for i := starts[p]; i < starts[p+1]; i++ {
			if fn.Partition(keys[i]) != p {
				t.Fatal("misplaced tuple after compact")
			}
		}
	}
}

func TestPublicSorts(t *testing.T) {
	n := 1 << 15
	mk := func() ([]uint32, []uint32) {
		return gen.ZipfKeys[uint32](n, 1<<20, 1.0, 9), RIDs[uint32](n)
	}
	origK, origV := mk()

	type runFn func(k, v []uint32)
	runs := map[string]runFn{
		"LSB": func(k, v []uint32) { SortLSB(k, v, &SortOptions{Threads: 4, Regions: 2}) },
		"MSB": func(k, v []uint32) { SortMSB(k, v, &SortOptions{Threads: 4, Regions: 2, CacheTuples: 2048}) },
		"CMP": func(k, v []uint32) { SortCMP(k, v, &SortOptions{Threads: 4, Regions: 2, CacheTuples: 2048}) },
		"nil": func(k, v []uint32) { SortLSB(k, v, nil) },
	}
	for name, run := range runs {
		t.Run(name, func(t *testing.T) {
			keys, vals := mk()
			run(keys, vals)
			if !IsSorted(keys) {
				t.Fatal("not sorted")
			}
			if !SameMultiset(origK, origV, keys, vals) {
				t.Fatal("multiset changed")
			}
			if name == "LSB" || name == "nil" {
				if !IsStableSorted(keys, vals) {
					t.Fatal("LSB must be stable")
				}
			}
		})
	}
}

func TestPublicSortWithScratchAndStats(t *testing.T) {
	n := 1 << 14
	keys := gen.Uniform[uint32](n, 0, 11)
	vals := RIDs[uint32](n)
	tmpK := make([]uint32, n)
	tmpV := make([]uint32, n)
	var st SortStats
	SortLSBWithScratch(keys, vals, tmpK, tmpV, &SortOptions{Threads: 2, Stats: &st})
	if !IsSorted(keys) || st.Total() == 0 || st.Passes == 0 {
		t.Fatalf("scratch sort failed or no stats: %+v", st)
	}
}

func TestPublicRangeIndex(t *testing.T) {
	delims := gen.Uniform[uint32](999, 0, 13)
	sort.Slice(delims, func(i, j int) bool { return delims[i] < delims[j] })
	ix := NewRangeIndex(delims)
	if ix.Fanout() != 1000 {
		t.Fatalf("Fanout = %d", ix.Fanout())
	}
	keys := gen.Uniform[uint32](5000, 0, 17)
	out := make([]int32, len(keys))
	ix.LookupBatch(keys, out)
	for i, k := range keys {
		want := sort.Search(len(delims), func(j int) bool { return delims[j] > k })
		if ix.Lookup(k) != want || int(out[i]) != want {
			t.Fatalf("Lookup(%d) = %d/%d, want %d", k, ix.Lookup(k), out[i], want)
		}
	}
}

func TestPublicDictionary(t *testing.T) {
	keys := gen.Uniform[uint64](1000, 0, 19)
	d := BuildDictionary(keys)
	codes, err := d.EncodeAll(keys)
	if err != nil {
		t.Fatal(err)
	}
	rids := RIDs[uint64](len(codes))
	SortLSB(codes, rids, &SortOptions{Threads: 2})
	if !IsSorted(codes) {
		t.Fatal("codes not sorted")
	}
	back, err := d.DecodeAll(codes)
	if err != nil {
		t.Fatal(err)
	}
	if !IsSorted(back) {
		t.Fatal("order-preserving decode violated")
	}
}

func TestPublicValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("mismatched pair", func() { SortLSB([]uint32{1, 2}, []uint32{1}, nil) })
	mustPanic("short scratch", func() {
		SortCMPWithScratch([]uint32{1, 2}, []uint32{0, 1}, []uint32{0}, []uint32{0}, nil)
	})
	mustPanic("mismatched dst", func() {
		Partition([]uint32{1}, []uint32{1}, []uint32{}, []uint32{}, Hash[uint32](2), 1)
	})
}
