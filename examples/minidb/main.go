// Minidb: a complete analytical query on columnar data, composed entirely
// from the partitioning menu — the paper's framing of why main-memory
// partitioning matters (Section 1: joins and aggregations dominate
// analytical query time; Section 6: the variants are a toolbox for
// building those operators).
//
// Schema (column-store, dictionary-compressible integer columns):
//
//	customers(custkey, segment)        500K rows
//	orders(orderkey, custkey, price)   4M rows
//
// Query:
//
//	SELECT segment, COUNT(*), SUM(price)
//	FROM orders JOIN customers USING (custkey)
//	GROUP BY segment
//	ORDER BY segment
//
// Plan: partitioned hash join (orders ⋈ customers) feeding a partitioned
// group-by, with the tiny result sorted by the library itself.
package main

import (
	"fmt"
	"time"

	partsort "repro"
	"repro/internal/gen"
	"repro/internal/join"
)

const (
	nCustomers = 500_000
	nOrders    = 4_000_000
	nSegments  = 8
)

func main() {
	// Build the columns.
	custKey := gen.Permutation[uint32](nCustomers, 1)
	custSeg := gen.Uniform[uint32](nCustomers, nSegments, 2)
	ordCust := gen.ZipfKeys[uint32](nOrders, nCustomers, 1.0, 3) // hot customers
	ordPrice := gen.Uniform[uint32](nOrders, 10_000, 4)

	start := time.Now()

	// Join: for each order, find the customer's segment. The probe payload
	// carries the order's row id so the price column can be fetched.
	segOfOrder := make([]uint32, nOrders)
	matched := 0
	join.HashJoin(
		join.Relation[uint32]{Keys: custKey, Vals: custSeg},
		join.Relation[uint32]{Keys: ordCust, Vals: partsort.RIDs[uint32](nOrders)},
		func(p join.Pair[uint32]) {
			segOfOrder[p.ProbeVal] = p.BuildVal
			matched++
		},
		join.HashJoinOptions{Threads: 4},
	)

	// Aggregate: GROUP BY segment over (segment, price).
	groups := join.GroupBy(segOfOrder, ordPrice, join.GroupByOptions{Fanout: 16, Threads: 4})

	// Order the (tiny) result by segment with the library.
	segs := make([]uint32, 0, len(groups))
	for s := range groups {
		segs = append(segs, s)
	}
	rids := partsort.RIDs[uint32](len(segs))
	partsort.SortMSB(segs, rids, nil)

	elapsed := time.Since(start)

	fmt.Printf("joined %d orders x %d customers (%d matches) and grouped in %.1f ms\n",
		nOrders, nCustomers, matched, float64(elapsed.Microseconds())/1000)
	fmt.Println("segment  count     sum(price)")
	var totalCount, totalSum uint64
	for _, s := range segs {
		g := groups[s]
		fmt.Printf("%7d  %8d  %12d\n", s, g.Count, g.Sum)
		totalCount += g.Count
		totalSum += g.Sum
	}

	// Verify against a direct scan.
	var wantSum uint64
	for i := range segOfOrder {
		wantSum += uint64(ordPrice[i])
	}
	if totalCount != nOrders || totalSum != wantSum {
		panic(fmt.Sprintf("aggregate mismatch: %d/%d rows, %d/%d sum",
			totalCount, nOrders, totalSum, wantSum))
	}
	fmt.Println("verified against a direct scan")
}
