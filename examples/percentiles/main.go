// Percentiles: range partitioning as an analytics operator. Computing
// percentile buckets of a measurement column needs a range function — the
// operation the paper makes fast with its cache-resident index. This
// example buckets request latencies into 100 percentile bands and reports
// p50/p90/p99/p999 without fully sorting the column: one sampling pass,
// one index-driven histogram pass, and a partial refinement of the tail
// bucket.
package main

import (
	"fmt"
	"sort"
	"time"

	partsort "repro"
	"repro/internal/gen"
)

const n = 1 << 22

func main() {
	// Synthetic latencies: log-normal-ish via the product of uniforms,
	// with a Zipf-heavy tail.
	lat := make([]uint64, n)
	rng := gen.NewRNG(7)
	for i := range lat {
		base := rng.Uint64n(1000) + 1
		tail := uint64(1)
		if rng.Uint64n(100) == 0 {
			tail = rng.Uint64n(500) + 1 // the slow 1%
		}
		lat[i] = base * tail
	}

	t0 := time.Now()
	// Delimiters: equal-depth percentile boundaries from a sample.
	sample := make([]uint64, 1<<16)
	for i := range sample {
		sample[i] = lat[rng.Uint64n(n)]
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	delims := make([]uint64, 99)
	for i := range delims {
		delims[i] = sample[(i+1)*len(sample)/100]
	}
	ix := partsort.NewRangeIndex(delims)

	// One index pass: percentile histogram.
	codes := make([]int32, n)
	ix.LookupBatch(lat, codes)
	hist := make([]int, ix.Fanout())
	for _, c := range codes {
		hist[c]++
	}

	// Percentile estimates: delimiters ARE the percentile boundaries.
	fmt.Printf("bucketed %d latencies into %d percentile bands in %.1f ms\n",
		n, ix.Fanout(), float64(time.Since(t0).Microseconds())/1000)
	fmt.Printf("p50 ≈ %d   p90 ≈ %d   p99 ≈ %d\n", delims[49], delims[89], delims[98])

	// Refine the tail: sort only the top bucket to get exact p99.9 — the
	// selective-recursion trick the comparison sort uses for single-key
	// partitions, applied to analytics.
	var tail []uint64
	for i, c := range codes {
		if int(c) == ix.Fanout()-1 {
			tail = append(tail, lat[i])
		}
	}
	rids := partsort.RIDs[uint64](len(tail))
	partsort.SortMSB(tail, rids, nil)
	idx999 := len(tail) - n/1000 // rank of p99.9 within the tail bucket
	fmt.Printf("p99.9 = %d (exact, from sorting only the top bucket: %d of %d values)\n",
		tail[idx999], len(tail), n)

	// Sanity: full sort agrees.
	full := append([]uint64(nil), lat...)
	fr := partsort.RIDs[uint64](n)
	partsort.SortLSB(full, fr, &partsort.SortOptions{Threads: 4})
	exact := full[n-n/1000]
	if tail[idx999] != exact {
		panic(fmt.Sprintf("p99.9 mismatch: bucket path %d, full sort %d", tail[idx999], exact))
	}
	fmt.Println("verified against a full sort")
}
