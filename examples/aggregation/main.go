// Aggregation: partitioned group-by. A group-by over a high-cardinality
// key thrashes a single global hash table; partitioning the input first
// (radix on the low key bits) makes every partition's group table
// cache-resident and the aggregation shared-nothing — the same pattern the
// paper's partitioning menu serves for joins.
//
// The example computes SUM(amount) GROUP BY account over a Zipf-skewed
// account column and cross-checks the partitioned plan against a direct
// map-based aggregation.
package main

import (
	"fmt"
	"time"

	partsort "repro"
	"repro/internal/gen"
)

const (
	nRows    = 1 << 21
	accounts = 1 << 18
	fanout   = 128
	threads  = 4
)

func main() {
	acct := gen.ZipfKeys[uint32](nRows, accounts, 1.0, 11)
	amount := gen.Uniform[uint32](nRows, 1000, 12)

	t0 := time.Now()
	direct := directAgg(acct, amount)
	tDirect := time.Since(t0)

	t0 = time.Now()
	groups, checksum := partitionedAgg(acct, amount)
	tPart := time.Since(t0)

	var directChecksum uint64
	for k, s := range direct {
		directChecksum += uint64(k) ^ s
	}
	if len(direct) != groups || checksum != directChecksum {
		panic(fmt.Sprintf("aggregation mismatch: %d/%d groups, %x vs %x",
			groups, len(direct), checksum, directChecksum))
	}
	fmt.Printf("aggregated %d rows into %d groups\n", nRows, groups)
	fmt.Printf("direct hash aggregation: %8.2f ms\n", ms(tDirect))
	fmt.Printf("partitioned aggregation: %8.2f ms (%d-way radix)\n", ms(tPart), fanout)
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func directAgg(acct, amount []uint32) map[uint32]uint64 {
	m := make(map[uint32]uint64)
	for i, a := range acct {
		m[a] += uint64(amount[i])
	}
	return m
}

// partitionedAgg radix-partitions the rows, then aggregates each partition
// with a private table. Keys sharing low bits land together, so a
// partition's table holds ~accounts/fanout groups.
func partitionedAgg(acct, amount []uint32) (groups int, checksum uint64) {
	fn := partsort.Radix[uint32](0, 7) // 128-way on the low bits
	pK := make([]uint32, len(acct))
	pV := make([]uint32, len(acct))
	hist := partsort.Partition(acct, amount, pK, pV, fn, threads)

	lo := 0
	for _, h := range hist {
		m := make(map[uint32]uint64, h/4+1)
		for i := lo; i < lo+h; i++ {
			m[pK[i]] += uint64(pV[i])
		}
		for k, s := range m {
			checksum += uint64(k) ^ s
		}
		groups += len(m)
		lo += h
	}
	return groups, checksum
}
