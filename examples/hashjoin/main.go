// Hashjoin: the paper's motivating use of partitioning (Section 1) — a
// partitioned hash join. Both relations are hash-partitioned in parallel
// until each piece is cache-resident, then each piece pair is joined with
// a private hash table, entirely cache-local and shared-nothing.
//
// The example joins orders(custkey, orderid) against customers(custkey,
// segment) and counts matches per run, comparing the partitioned join
// against a naive global-hash-table join.
package main

import (
	"fmt"
	"time"

	partsort "repro"
	"repro/internal/gen"
)

const (
	nCustomers = 1 << 19
	nOrders    = 1 << 21
	fanout     = 256 // pieces of ~8K customers: cache-resident
	threads    = 4
)

func main() {
	// customers: key = custkey (dense), payload = segment id.
	custKeys := gen.Permutation[uint32](nCustomers, 1)
	custSeg := gen.Uniform[uint32](nCustomers, 10, 2)
	// orders: key = custkey (foreign key), payload = order id.
	ordKeys := gen.Uniform[uint32](nOrders, nCustomers, 3)
	ordID := partsort.RIDs[uint32](nOrders)

	t0 := time.Now()
	naive := naiveJoin(custKeys, custSeg, ordKeys, ordID)
	tNaive := time.Since(t0)

	t0 = time.Now()
	parted := partitionedJoin(custKeys, custSeg, ordKeys, ordID)
	tPart := time.Since(t0)

	if naive != parted {
		panic(fmt.Sprintf("join results differ: naive=%d partitioned=%d", naive, parted))
	}
	fmt.Printf("joined %d orders x %d customers: %d matches\n", nOrders, nCustomers, parted)
	fmt.Printf("naive global hash table: %8.2f ms\n", ms(tNaive))
	fmt.Printf("partitioned hash join:   %8.2f ms (%d-way, cache-resident pieces)\n", ms(tPart), fanout)
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// naiveJoin builds one big hash table over customers and probes it with
// every order: simple, but every probe is a random access over a table far
// larger than the cache.
func naiveJoin(custKeys, custSeg, ordKeys, ordID []uint32) uint64 {
	ht := make(map[uint32]uint32, len(custKeys))
	for i, k := range custKeys {
		ht[k] = custSeg[i]
	}
	var sum uint64
	for i, k := range ordKeys {
		if seg, ok := ht[k]; ok {
			sum += uint64(seg) + uint64(ordID[i])
		}
	}
	return sum
}

// partitionedJoin hash-partitions both inputs with the same function, then
// joins piece pairs independently: each piece's hash table is
// cache-resident, so probes stop missing.
func partitionedJoin(custKeys, custSeg, ordKeys, ordID []uint32) uint64 {
	fn := partsort.Hash[uint32](fanout)

	pcK := make([]uint32, len(custKeys))
	pcV := make([]uint32, len(custKeys))
	custHist := partsort.Partition(custKeys, custSeg, pcK, pcV, fn, threads)

	poK := make([]uint32, len(ordKeys))
	poV := make([]uint32, len(ordKeys))
	ordHist := partsort.Partition(ordKeys, ordID, poK, poV, fn, threads)

	var sum uint64
	co, oo := 0, 0
	for p := 0; p < fanout; p++ {
		ch, oh := custHist[p], ordHist[p]
		ht := make(map[uint32]uint32, ch)
		for i := co; i < co+ch; i++ {
			ht[pcK[i]] = pcV[i]
		}
		for i := oo; i < oo+oh; i++ {
			if seg, ok := ht[poK[i]]; ok {
				sum += uint64(seg) + uint64(poV[i])
			}
		}
		co += ch
		oo += oh
	}
	return sum
}
