// Quickstart: generate a columnar table of (key, rid) tuples, sort it with
// each of the three algorithms, and verify the results.
package main

import (
	"fmt"
	"time"

	partsort "repro"
	"repro/internal/gen"
)

func main() {
	const n = 1 << 21 // 2M tuples

	fmt.Printf("generating %d uniform 32-bit tuples\n", n)
	base := gen.Uniform[uint32](n, 0, 1)

	run := func(name string, sort func(k, v []uint32)) {
		keys := append([]uint32(nil), base...)
		rids := partsort.RIDs[uint32](n)
		start := time.Now()
		sort(keys, rids)
		elapsed := time.Since(start)
		if !partsort.IsSorted(keys) {
			panic(name + ": output not sorted")
		}
		origRids := partsort.RIDs[uint32](n)
		if !partsort.SameMultiset(base, origRids, keys, rids) {
			panic(name + ": tuples lost or corrupted")
		}
		fmt.Printf("%-4s sorted %d tuples in %8.2f ms (%6.1f Mtuples/s)\n",
			name, n, float64(elapsed.Microseconds())/1000,
			float64(n)/elapsed.Seconds()/1e6)
	}

	opt := &partsort.SortOptions{Threads: 4, Regions: 4}
	run("LSB", func(k, v []uint32) { partsort.SortLSB(k, v, opt) })
	run("MSB", func(k, v []uint32) { partsort.SortMSB(k, v, opt) })
	run("CMP", func(k, v []uint32) { partsort.SortCMP(k, v, opt) })

	// LSB is stable: payloads of equal keys keep input order. Demonstrate
	// on a small-domain column where every key repeats many times.
	keys := gen.Uniform[uint32](n, 1000, 7)
	rids := partsort.RIDs[uint32](n)
	partsort.SortLSB(keys, rids, opt)
	if !partsort.IsStableSorted(keys, rids) {
		panic("LSB lost stability")
	}
	fmt.Println("LSB stability verified on a 1000-value domain")
}
