// Rangeindex: the cache-resident range index of Section 3.5.2 in action —
// computing a 1000-way range partition function over a large key column,
// against the textbook binary-search baseline. The index replaces log2(P)
// dependent cache loads per key with a few level-synchronous node
// searches, which is what makes range partitioning (and therefore the
// comparison sort and ordered analytics like percentile bucketing)
// practical.
package main

import (
	"fmt"
	"sort"
	"time"

	partsort "repro"
	"repro/internal/gen"
)

const (
	nKeys  = 1 << 22
	fanout = 1000
)

func main() {
	keys := gen.Uniform[uint64](nKeys, 0, 21)

	// Delimiters: equal-depth over a sample — 999 sorted split points.
	sample := append([]uint64(nil), keys[:1<<16]...)
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	delims := make([]uint64, fanout-1)
	for i := range delims {
		delims[i] = sample[(i+1)*len(sample)/fanout]
	}

	ix := partsort.NewRangeIndex(delims)
	fmt.Printf("built a %d-way range index over %d delimiters\n", ix.Fanout(), len(delims))

	// Binary-search baseline.
	bsCodes := make([]int32, nKeys)
	t0 := time.Now()
	for i, k := range keys {
		bsCodes[i] = int32(sort.Search(len(delims), func(j int) bool { return delims[j] > k }))
	}
	tBS := time.Since(t0)

	// Index, batch path.
	ixCodes := make([]int32, nKeys)
	t0 = time.Now()
	ix.LookupBatch(keys, ixCodes)
	tIx := time.Since(t0)

	for i := range bsCodes {
		if bsCodes[i] != ixCodes[i] {
			panic(fmt.Sprintf("index disagrees with binary search at %d: %d vs %d",
				i, ixCodes[i], bsCodes[i]))
		}
	}

	mks := func(d time.Duration) float64 { return float64(nKeys) / d.Seconds() / 1e6 }
	fmt.Printf("binary search: %7.1f Mkeys/s\n", mks(tBS))
	fmt.Printf("range index:   %7.1f Mkeys/s (%.2fx)\n", mks(tIx), tBS.Seconds()/tIx.Seconds())

	// The resulting histogram is balanced: equal-depth delimiters keep
	// every bucket near nKeys/fanout regardless of the distribution.
	hist := make([]int, fanout)
	for _, c := range ixCodes {
		hist[c]++
	}
	minB, maxB := hist[0], hist[0]
	for _, h := range hist {
		minB, maxB = min(minB, h), max(maxB, h)
	}
	fmt.Printf("bucket sizes: min %d / mean %d / max %d\n", minB, nKeys/fanout, maxB)
}
