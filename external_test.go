package partsort

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"testing"

	"repro/internal/fault"
	"repro/internal/gen"
)

// extTestOpt forces the spill path at unit-test sizes.
func extTestOpt(t *testing.T) *SortOptions {
	return &SortOptions{
		TempDir:            t.TempDir(),
		SpillSegmentTuples: 1 << 12,
		SpillBucketBits:    3,
		SpillMergeWidth:    4,
		Threads:            2,
	}
}

// TestSortExternalForcedSpill sorts an input four times the configured
// memory budget through the spill path and checks the full contract:
// sorted, a permutation of the input, spill stats populated, temp dir
// clean.
func TestSortExternalForcedSpill(t *testing.T) {
	n := 1 << 16 // 1 MiB of pairs
	opt := extTestOpt(t)
	opt.MaxAuxBytes = 256 << 10 // input is 4x this budget
	keys := gen.Uniform[uint64](n, 0, 1)
	vals := RIDs[uint64](n)
	sumK := append([]uint64(nil), keys...)
	sumV := append([]uint64(nil), vals...)

	st, err := SortExternal(keys, vals, opt)
	if err != nil {
		t.Fatalf("SortExternal: %v", err)
	}
	if !st.Spilled {
		t.Fatalf("expected spill at n=%d, budget=%d: %+v", n, opt.MaxAuxBytes, st)
	}
	if !IsSorted(keys) {
		t.Fatal("output not sorted")
	}
	if !SameMultiset(keys, vals, sumK, sumV) {
		t.Fatal("output not a permutation of the input")
	}
	if st.SpillBytes == 0 || st.ReadBytes == 0 || st.RunsWritten == 0 {
		t.Fatalf("spill stats empty: %+v", st)
	}
	ents, _ := os.ReadDir(opt.TempDir)
	if len(ents) != 0 {
		t.Fatalf("temp files leaked: %v", ents)
	}
}

// TestSortExternalInMemory checks that small inputs under a roomy budget
// never touch disk, and still sort.
func TestSortExternalInMemory(t *testing.T) {
	n := 1 << 12
	keys := gen.Uniform[uint64](n, 1, 1)
	vals := RIDs[uint64](n)
	opt := &SortOptions{TempDir: t.TempDir()}
	st, err := SortExternal(keys, vals, opt)
	if err != nil {
		t.Fatalf("SortExternal: %v", err)
	}
	if st.Spilled {
		t.Fatalf("small input spilled: %+v", st)
	}
	if !IsSorted(keys) {
		t.Fatal("output not sorted")
	}
	ents, _ := os.ReadDir(opt.TempDir)
	if len(ents) != 0 {
		t.Fatalf("in-memory path touched the temp dir: %v", ents)
	}
}

// TestSortExternalCancel checks cooperative cancellation: ctx.Err() comes
// back, the input is a permutation, and no temp files remain.
func TestSortExternalCancel(t *testing.T) {
	n := 1 << 15
	opt := extTestOpt(t)
	keys := gen.Uniform[uint64](n, 0, 2)
	vals := RIDs[uint64](n)
	sumK := append([]uint64(nil), keys...)
	sumV := append([]uint64(nil), vals...)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SortExternalCtx(ctx, keys, vals, opt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !SameMultiset(keys, vals, sumK, sumV) {
		t.Fatal("input not a permutation after cancellation")
	}
	ents, _ := os.ReadDir(opt.TempDir)
	if len(ents) != 0 {
		t.Fatalf("temp files leaked on cancel: %v", ents)
	}
}

// TestSortExternalArgErrors checks the validation surface.
func TestSortExternalArgErrors(t *testing.T) {
	keys := []uint64{1, 2}
	var ae *ArgError
	if _, err := SortExternal(keys, []uint64{1}, nil); !errors.As(err, &ae) || ae.Field != "vals" {
		t.Fatalf("mismatched vals: %v", err)
	}
	bad := []SortOptions{
		{SpillSegmentTuples: -1},
		{SpillBucketBits: 17},
		{SpillMergeWidth: -2},
		{MaxSpillBytes: -5},
	}
	for _, opt := range bad {
		opt := opt
		if _, err := SortExternal(keys, []uint64{1, 2}, &opt); !errors.As(err, &ae) {
			t.Fatalf("opt %+v: err = %v, want *ArgError", opt, err)
		}
	}
}

// TestSortExternalSpillBudget checks disk-budget refusal: *SpillError
// unwrapping ErrSpillBudget, input intact, nothing leaked.
func TestSortExternalSpillBudget(t *testing.T) {
	n := 1 << 15
	opt := extTestOpt(t)
	opt.MaxSpillBytes = 8 << 10
	keys := gen.Uniform[uint64](n, 0, 3)
	vals := RIDs[uint64](n)
	sumK := append([]uint64(nil), keys...)
	sumV := append([]uint64(nil), vals...)
	_, err := SortExternal(keys, vals, opt)
	var se *SpillError
	if !errors.As(err, &se) || !errors.Is(err, ErrSpillBudget) {
		t.Fatalf("err = %v, want *SpillError wrapping ErrSpillBudget", err)
	}
	if !SameMultiset(keys, vals, sumK, sumV) {
		t.Fatal("input changed on budget refusal")
	}
	ents, _ := os.ReadDir(opt.TempDir)
	if len(ents) != 0 {
		t.Fatalf("temp files leaked: %v", ents)
	}
}

// TestSortExternalFaultInjection checks that injected spill faults
// surface as *InternalError wrapping fault.Injected, with the resource
// ledger drained.
func TestSortExternalFaultInjection(t *testing.T) {
	n := 1 << 15
	opt := extTestOpt(t)
	keys := gen.Uniform[uint64](n, 0, 4)
	vals := RIDs[uint64](n)
	sumK := append([]uint64(nil), keys...)
	sumV := append([]uint64(nil), vals...)
	fault.Enable(fault.SiteExtSpill, 10)
	defer fault.Disable()
	_, err := SortExternal(keys, vals, opt)
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v, want *InternalError", err)
	}
	if !errors.Is(err, fault.Injected{Site: fault.SiteExtSpill}) {
		t.Fatalf("err does not wrap the injected site: %v", err)
	}
	if !SameMultiset(keys, vals, sumK, sumV) {
		t.Fatal("input not a permutation after containment")
	}
	if err := fault.CheckResources(); err != nil {
		t.Fatalf("resource ledger: %v", err)
	}
	ents, _ := os.ReadDir(opt.TempDir)
	if len(ents) != 0 {
		t.Fatalf("temp files leaked: %v", ents)
	}
}

// TestSortExternalWorkspace runs repeated spills through one workspace
// and checks steady state allocates nothing from the OS pools.
func TestSortExternalWorkspace(t *testing.T) {
	w := NewWorkspace()
	defer w.Close()
	opt := extTestOpt(t)
	opt.Workspace = w
	n := 1 << 15
	keys := gen.Uniform[uint64](n, 0, 5)
	vals := RIDs[uint64](n)
	if _, err := SortExternal(keys, vals, opt); err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	for i := 0; i < 3; i++ {
		rand.New(rand.NewSource(int64(i))).Shuffle(n, func(a, b int) {
			keys[a], keys[b] = keys[b], keys[a]
			vals[a], vals[b] = vals[b], vals[a]
		})
		st, err := SortExternal(keys, vals, opt)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if !st.Spilled || !IsSorted(keys) {
			t.Fatalf("run %d: spilled=%v sorted=%v", i, st.Spilled, IsSorted(keys))
		}
	}
}

// TestPlanSpill checks the planner's decision boundary and that the
// planned footprint respects the budget it was given.
func TestPlanSpill(t *testing.T) {
	budget := int64(1 << 20)
	small := PlanSpill(1<<10, 64, budget)
	if small.Spill {
		t.Fatalf("1K tuples should fit a 1 MiB budget: %+v", small)
	}
	big := PlanSpill(1<<24, 64, budget)
	if !big.Spill {
		t.Fatalf("16M tuples must spill under a 1 MiB budget: %+v", big)
	}
	if big.MemBytes > budget+budget/2 {
		t.Fatalf("planned footprint %d far exceeds budget %d", big.MemBytes, budget)
	}
	if big.SegmentTuples < 1 || big.MergeWidth < 2 || big.BucketBits < 1 {
		t.Fatalf("degenerate plan: %+v", big)
	}
}
