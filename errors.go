package partsort

import "fmt"

// ArgError reports an invalid argument to an entry point: a malformed
// option value or mismatched column lengths. The Try entry points return
// it; the legacy panicking entry points panic with it, so both surfaces
// share one validator and one error taxonomy.
type ArgError struct {
	Func   string // entry point, e.g. "TrySortLSB"
	Field  string // offending parameter or option field, e.g. "RadixBits"
	Reason string // the violated constraint
}

// Error implements error in the "partsort: Func: invalid Field: Reason"
// form.
func (e *ArgError) Error() string {
	return "partsort: " + e.Func + ": invalid " + e.Field + ": " + e.Reason
}

// ResourceError reports a sort that could not acquire auxiliary memory
// within its budget: workspace scratch acquisition crossed
// SortOptions.MaxAuxBytes (or the default budget of half the machine's
// available memory). The run was contained like any worker failure — all
// goroutines drained, the input restored to a permutation — but unlike an
// *InternalError, retrying the same plan is pointless: the resilient
// supervisor classifies it as a degradation trigger and steers the next
// attempt onto the in-place paths (see RetryPolicy).
type ResourceError struct {
	Op     string // the Try operation whose acquisition failed
	Need   int64  // bytes the failing acquisition asked for
	InUse  int64  // auxiliary bytes already checked out when it failed
	Budget int64  // the budget in force
}

// Error implements error, naming the operation and the budget arithmetic.
func (e *ResourceError) Error() string {
	return fmt.Sprintf("partsort: %s: aux memory budget exceeded: need %d B with %d B in use, budget %d B",
		e.Op, e.Need, e.InUse, e.Budget)
}

// SpillError reports an external-sort I/O failure: creating, writing, or
// reading back the spill files, crossing the disk budget (unwraps to
// ErrSpillBudget), or a sealed run failing its checksum on read-back
// (unwraps to ErrSpillCorrupt). The run was contained: the input arrays
// hold a permutation of the input and every temp file was removed.
type SpillError struct {
	Op   string // the entry point, e.g. "SortExternal"
	Path string // the spill file or directory involved
	Err  error  // the underlying failure
}

// Error implements error, naming the operation and the spill path.
func (e *SpillError) Error() string {
	return fmt.Sprintf("partsort: %s: spill %s: %v", e.Op, e.Path, e.Err)
}

// Unwrap exposes the underlying failure for errors.Is/As.
func (e *SpillError) Unwrap() error { return e.Err }

// InternalError reports a worker panic that the hardened execution layer
// contained: instead of crashing the process, the panic was recovered, its
// sibling workers were cancelled and drained, the input arrays were
// restored to a permutation of the input where the interruption point
// guarantees it, and the failure surfaced here as an error.
type InternalError struct {
	Op    string // the Try operation that contained the panic
	Value any    // the recovered panic value
	Stack []byte // the panicking goroutine's stack, captured at the site
}

// Error implements error, naming the containing operation and the panic
// value.
func (e *InternalError) Error() string {
	return fmt.Sprintf("partsort: %s: contained worker panic: %v", e.Op, e.Value)
}

// Unwrap exposes the panic value for errors.Is/As when it was an error.
func (e *InternalError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}
