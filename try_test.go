package partsort

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/gen"
)

// waitGoroutines waits (with a deadline) for the goroutine count to settle
// back to the baseline: contained failures reap workers synchronously, but
// the runtime may take a moment to retire exited goroutines.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d live, baseline %d", runtime.NumGoroutine(), base)
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

type tryAlgo struct {
	name string
	run  func(ctx context.Context, keys, vals []uint32, opt *SortOptions) error
}

var tryAlgos = []tryAlgo{
	{"lsb", TrySortLSBCtx[uint32]},
	{"msb", TrySortMSBCtx[uint32]},
	{"cmp", TrySortCmpCtx[uint32]},
}

func TestTrySortSucceeds(t *testing.T) {
	n := 1 << 15
	keys := gen.Uniform[uint32](n, 0, 1)
	vals := RIDs[uint32](n)
	for _, a := range tryAlgos {
		for _, threads := range []int{1, 4} {
			k := append([]uint32(nil), keys...)
			v := append([]uint32(nil), vals...)
			if err := a.run(context.Background(), k, v, &SortOptions{Threads: threads}); err != nil {
				t.Fatalf("%s threads=%d: %v", a.name, threads, err)
			}
			if !IsSorted(k) {
				t.Fatalf("%s threads=%d: not sorted", a.name, threads)
			}
			if !SameMultiset(keys, vals, k, v) {
				t.Fatalf("%s threads=%d: multiset changed", a.name, threads)
			}
		}
	}
}

func TestTryArgErrors(t *testing.T) {
	keys := make([]uint32, 8)
	vals := make([]uint32, 8)
	short := make([]uint32, 7)
	cases := []struct {
		name  string
		field string
		err   error
	}{
		{"pair", "vals", TrySortLSB(keys, short, nil)},
		{"threads", "Threads", TrySortMSB(keys, vals, &SortOptions{Threads: -1})},
		{"regions", "Regions", TrySortCmp(keys, vals, &SortOptions{Regions: -2})},
		{"radix-high", "RadixBits", TrySortLSB(keys, vals, &SortOptions{RadixBits: 17})},
		{"radix-neg", "RadixBits", TrySortLSB(keys, vals, &SortOptions{RadixBits: -3})},
		{"fanout", "RangeFanout", TrySortCmp(keys, vals, &SortOptions{RangeFanout: -1})},
		{"cache", "CacheTuples", TrySortMSB(keys, vals, &SortOptions{CacheTuples: -1})},
	}
	for _, c := range cases {
		var ae *ArgError
		if !errors.As(c.err, &ae) {
			t.Fatalf("%s: got %v, want *ArgError", c.name, c.err)
		}
		if ae.Field != c.field {
			t.Fatalf("%s: field %q, want %q", c.name, ae.Field, c.field)
		}
	}
	// Valid options (including the RadixBits extremes) must not error.
	for _, opt := range []*SortOptions{nil, {}, {RadixBits: 1}, {RadixBits: 16}} {
		k := gen.Uniform[uint32](1<<10, 0, 2)
		v := RIDs[uint32](len(k))
		if err := TrySortLSB(k, v, opt); err != nil {
			t.Fatalf("valid options %+v: %v", opt, err)
		}
		if !IsSorted(k) {
			t.Fatalf("valid options %+v: not sorted", opt)
		}
	}
}

// TestLegacyPanicsTyped pins the legacy entry points to the shared
// validator: they still panic, and the value is the same typed *ArgError
// the Try API returns.
func TestLegacyPanicsTyped(t *testing.T) {
	defer func() {
		e := recover()
		ae, ok := e.(*ArgError)
		if !ok {
			t.Fatalf("legacy panic value %v (%T), want *ArgError", e, e)
		}
		if ae.Field != "RadixBits" {
			t.Fatalf("field %q, want RadixBits", ae.Field)
		}
	}()
	SortLSB(make([]uint32, 4), make([]uint32, 4), &SortOptions{RadixBits: 99})
	t.Fatal("no panic")
}

// faultCase is one (algorithm, site, options) cell of the injection
// matrix: every registered site of every sort, on the configuration that
// reaches it.
type faultCase struct {
	algo    string
	site    fault.Site
	threads int
	regions int
	cache   int // CacheTuples override; CMP needs it so 1<<15 tuples exceed the cache-resident path
}

var faultMatrix = []faultCase{
	{"lsb", fault.SiteLSBPass, 4, 1, 0},
	{"lsb", fault.SiteWorkerStart, 4, 1, 0},
	{"lsb", fault.SiteLSBPass, 4, 2, 0},
	{"lsb", fault.SiteShuffleStart, 4, 2, 0},
	{"msb", fault.SiteMSBRecurse, 4, 1, 0},
	{"msb", fault.SiteWorkerStart, 4, 1, 0},
	{"msb", fault.SiteBlockPermute, 4, 1, 0},
	{"msb", fault.SiteBlockCleanup, 4, 1, 0},
	{"msb", fault.SiteBlockRefill, 4, 2, 0},
	{"msb", fault.SiteShuffleStart, 4, 2, 0},
	{"cmp", fault.SiteCMPPass, 4, 1, 1 << 12},
	{"cmp", fault.SiteWorkerStart, 4, 1, 1 << 12},
	{"cmp", fault.SiteBlockPermute, 4, 1, 1 << 12},
	{"cmp", fault.SiteBlockCleanup, 4, 1, 1 << 12},
	{"cmp", fault.SiteCMPPass, 4, 2, 1 << 12},
	{"cmp", fault.SiteShuffleStart, 4, 2, 1 << 12},
}

func algoByName(name string) tryAlgo {
	for _, a := range tryAlgos {
		if a.name == name {
			return a
		}
	}
	panic("unknown algo " + name)
}

// TestTryFaultMatrix arms every registered injection site against every
// sort that declares it and proves the hardened-execution contract: the
// panic comes back as *InternalError wrapping the injected value (never a
// crash), no goroutine leaks, and keys/vals are left a permutation of the
// input.
func TestTryFaultMatrix(t *testing.T) {
	defer fault.Disable()
	n := 1 << 15
	keys := gen.Uniform[uint32](n, 0, 3)
	vals := RIDs[uint32](n)

	for _, withWS := range []bool{false, true} {
		var w *Workspace
		if withWS {
			w = NewWorkspace()
			defer w.Close()
			// Prime the persistent pool so its parked workers are part of
			// the goroutine baseline, not mistaken for a leak.
			k := append([]uint32(nil), keys...)
			v := append([]uint32(nil), vals...)
			if err := TrySortLSB(k, v, &SortOptions{Threads: 4, Workspace: w}); err != nil {
				t.Fatal(err)
			}
		}
		for _, c := range faultMatrix {
			for _, after := range []int{0, 3} {
				name := c.algo + "/" + string(c.site)
				k := append([]uint32(nil), keys...)
				v := append([]uint32(nil), vals...)
				base := runtime.NumGoroutine()
				fault.Enable(c.site, after)
				err := algoByName(c.algo).run(context.Background(), k, v,
					&SortOptions{Threads: c.threads, Regions: c.regions, CacheTuples: c.cache, Workspace: w})
				fired := fault.Fired()
				fault.Disable()
				if fired {
					var ie *InternalError
					if !errors.As(err, &ie) {
						t.Fatalf("%s ws=%v after=%d: fault fired but err = %v (%T), want *InternalError",
							name, withWS, after, err, err)
					}
					if !errors.Is(err, fault.Injected{Site: c.site}) {
						t.Fatalf("%s ws=%v after=%d: InternalError does not wrap the injected fault: %v",
							name, withWS, after, ie.Value)
					}
					if len(ie.Stack) == 0 {
						t.Fatalf("%s ws=%v after=%d: no stack captured", name, withWS, after)
					}
				} else if after == 0 {
					t.Fatalf("%s ws=%v: site never reached at after=0 (matrix is stale)", name, withWS)
				} else if err != nil {
					t.Fatalf("%s ws=%v after=%d: fault did not fire but err = %v", name, withWS, after, err)
				} else if !IsSorted(k) {
					t.Fatalf("%s ws=%v after=%d: clean run not sorted", name, withWS, after)
				}
				if !SameMultiset(keys, vals, k, v) {
					t.Fatalf("%s ws=%v after=%d fired=%v: keys/vals are not a permutation of the input",
						name, withWS, after, fired)
				}
				waitGoroutines(t, base)
			}
		}
	}
}

// TestTryPartitionFault covers the standalone partition entry point: an
// injected worker panic surfaces as *InternalError and src is untouched.
func TestTryPartitionFault(t *testing.T) {
	defer fault.Disable()
	n := 1 << 14
	src := gen.Uniform[uint32](n, 0, 9)
	srcV := RIDs[uint32](n)
	origK := append([]uint32(nil), src...)
	origV := append([]uint32(nil), srcV...)
	dst := make([]uint32, n)
	dstV := make([]uint32, n)
	fn := Radix[uint32](0, 8)

	hist, err := TryPartition(src, srcV, dst, dstV, fn, 4)
	if err != nil || len(hist) != 256 {
		t.Fatalf("clean run: hist %d err %v", len(hist), err)
	}
	if !SameMultiset(origK, origV, dst, dstV) {
		t.Fatal("clean run: multiset changed")
	}

	base := runtime.NumGoroutine()
	fault.Enable(fault.SiteWorkerStart, 0)
	hist, err = TryPartition(src, srcV, dst, dstV, fn, 4)
	fired := fault.Fired()
	fault.Disable()
	if !fired {
		t.Fatal("worker/start never reached")
	}
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v (%T), want *InternalError", err, err)
	}
	if hist != nil {
		t.Fatal("histogram returned alongside an error")
	}
	for i := range src {
		if src[i] != origK[i] || srcV[i] != origV[i] {
			t.Fatal("src mutated by a failed partition")
		}
	}
	waitGoroutines(t, base)

	if _, err := TryPartition(src, srcV, dst[:n-1], dstV[:n-1], fn, 4); err == nil {
		t.Fatal("short dst accepted")
	}
	if _, err := TryPartition(src, srcV, dst, dstV, fn, -1); err == nil {
		t.Fatal("negative threads accepted")
	}
}

// TestTryCancelRace cancels 4-thread sorts mid-flight, many times, with
// scattered timing: the sort must return promptly with ctx.Err() (or
// finish clean), leave keys/vals a permutation, and leak no goroutines.
func TestTryCancelRace(t *testing.T) {
	iters := 1000
	if testing.Short() {
		iters = 100
	}
	w := NewWorkspace()
	defer w.Close()
	n := 1 << 15
	keys := gen.Uniform[uint32](n, 0, 7)
	vals := RIDs[uint32](n)
	work := make([]uint32, n)
	workV := make([]uint32, n)

	// Prime the pool for a stable goroutine baseline.
	copy(work, keys)
	copy(workV, vals)
	if err := TrySortLSB(work, workV, &SortOptions{Threads: 4, Workspace: w}); err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()

	for i := 0; i < iters; i++ {
		a := tryAlgos[i%len(tryAlgos)]
		copy(work, keys)
		copy(workV, vals)
		ctx, cancel := context.WithCancel(context.Background())
		// Spread the cancellation across the run: sometimes before the
		// first checkpoint, sometimes mid-pass, sometimes after the sort
		// already finished.
		delay := time.Duration(i%40) * 20 * time.Microsecond
		go func() {
			if delay > 0 {
				time.Sleep(delay)
			}
			cancel()
		}()
		err := a.run(ctx, work, workV, &SortOptions{Threads: 4, Workspace: w})
		cancel()
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("iter %d %s: err = %v, want nil or context.Canceled", i, a.name, err)
		}
		if err == nil && !IsSorted(work) {
			t.Fatalf("iter %d %s: clean return but not sorted", i, a.name)
		}
		if !SameMultiset(keys, vals, work, workV) {
			t.Fatalf("iter %d %s (err=%v): keys/vals are not a permutation of the input", i, a.name, err)
		}
	}
	waitGoroutines(t, base)
}

// TestTryCancelPrompt bounds the cancellation latency: a deadline that
// expires mid-sort must surface well before the sort would finish.
func TestTryCancelPrompt(t *testing.T) {
	n := 1 << 21
	keys := gen.Uniform[uint32](n, 0, 11)
	vals := RIDs[uint32](n)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := TrySortLSBCtx(ctx, keys, vals, &SortOptions{Threads: 4})
	elapsed := time.Since(start)
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want nil or context.DeadlineExceeded", err)
	}
	if err == nil {
		t.Skip("sort finished before the deadline; nothing to measure")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v: checkpoints are not being polled", elapsed)
	}
}

// TestTryPreCancelled pins the fast path: an already-cancelled context
// returns before touching the input.
func TestTryPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	keys := gen.Uniform[uint32](1<<12, 0, 5)
	orig := append([]uint32(nil), keys...)
	vals := RIDs[uint32](len(keys))
	for _, a := range tryAlgos {
		if err := a.run(ctx, keys, vals, &SortOptions{Threads: 4}); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", a.name, err)
		}
	}
	for i := range keys {
		if keys[i] != orig[i] {
			t.Fatal("pre-cancelled sort touched the input")
		}
	}
}

// FuzzTryOptions is the satellite no-panic fuzzer: whatever the option
// fields, lengths and context state, the Try entry points must return an
// error or succeed — never panic — and a nil error means a sorted
// permutation.
func FuzzTryOptions(f *testing.F) {
	f.Add(64, 64, 4, 2, 8, 360, 0, uint8(0), false)
	f.Add(100, 99, 1, 1, 0, 0, 0, uint8(1), false)
	f.Add(0, 0, 0, 0, -1, 0, 0, uint8(2), true)
	f.Add(4096, 4096, 16, 4, 16, 7, 33, uint8(3), false)
	f.Add(17, 17, -5, -5, 99, -1, -1, uint8(0), true)
	f.Fuzz(func(t *testing.T, nKeys, nVals, threads, regions, radixBits, rangeFanout, cacheTuples int, algo uint8, cancelled bool) {
		if nKeys < 0 {
			nKeys = -nKeys
		}
		if nVals < 0 {
			nVals = -nVals
		}
		nKeys %= 4097
		nVals %= 4097
		if threads > 16 {
			threads %= 17
		}
		if regions > 8 {
			regions %= 9
		}
		keys := gen.Uniform[uint32](nKeys, 0, uint64(nKeys)+1)
		vals := make([]uint32, nVals)
		origK := append([]uint32(nil), keys...)
		origV := append([]uint32(nil), vals...)
		opt := &SortOptions{
			Threads:     threads,
			Regions:     regions,
			RadixBits:   radixBits,
			RangeFanout: rangeFanout,
			CacheTuples: cacheTuples,
		}
		ctx, cancel := context.WithCancel(context.Background())
		if cancelled {
			cancel()
		} else {
			defer cancel()
		}
		var err error
		switch algo % 4 {
		case 0:
			err = TrySortLSBCtx(ctx, keys, vals, opt)
		case 1:
			err = TrySortMSBCtx(ctx, keys, vals, opt)
		case 2:
			err = TrySortCmpCtx(ctx, keys, vals, opt)
		case 3:
			dstK := make([]uint32, nKeys)
			dstV := make([]uint32, nVals)
			_, err = TryPartitionCtx(ctx, keys, vals, dstK, dstV, Radix[uint32](0, 6), threads)
		}
		if nKeys != nVals {
			var ae *ArgError
			if !errors.As(err, &ae) {
				t.Fatalf("mismatched lengths %d/%d accepted: err = %v", nKeys, nVals, err)
			}
			return
		}
		if err == nil && algo%4 != 3 {
			if !IsSorted(keys) {
				t.Fatal("nil error but not sorted")
			}
			if !SameMultiset(origK, origV, keys, vals) {
				t.Fatal("nil error but multiset changed")
			}
		}
	})
}
