package partsort

import (
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/join"
)

// BenchmarkJoin compares the join strategies built from the partitioning
// menu (the paper's Section 1 motivation / Section 6 conclusion).
func BenchmarkJoin(b *testing.B) {
	const nBuild, nProbe = 1 << 17, 1 << 19
	build := join.Relation[uint32]{
		Keys: gen.Uniform[uint32](nBuild, nBuild, 1),
		Vals: gen.RIDs[uint32](nBuild),
	}
	probe := join.Relation[uint32]{
		Keys: gen.Uniform[uint32](nProbe, nBuild, 2),
		Vals: gen.RIDs[uint32](nProbe),
	}
	for _, fanout := range []int{1, 64, 512} {
		name := fmt.Sprintf("hash/fanout=%d", fanout)
		if fanout == 1 {
			name = "hash/global-table"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var c join.Counter[uint32]
				join.HashJoin(build, probe, c.Emit, join.HashJoinOptions{Fanout: fanout, Threads: 4})
				if c.N == 0 {
					b.Fatal("no matches")
				}
			}
			b.ReportMetric(float64(nProbe)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mprobes/s")
		})
	}
	b.Run("sortmerge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var c join.Counter[uint32]
			join.SortMergeJoin(build, probe, c.Emit, join.SortMergeJoinOptions{Threads: 4})
			if c.N == 0 {
				b.Fatal("no matches")
			}
		}
		b.ReportMetric(float64(nProbe)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mprobes/s")
	})
}

// BenchmarkGroupBy compares direct vs partitioned aggregation.
func BenchmarkGroupBy(b *testing.B) {
	const n = 1 << 19
	keys := gen.ZipfKeys[uint32](n, 1<<16, 1.0, 3)
	vals := gen.Uniform[uint32](n, 1000, 5)
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if len(join.GroupByDirect(keys, vals)) == 0 {
				b.Fatal("no groups")
			}
		}
	})
	b.Run("partitioned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if len(join.GroupBy(keys, vals, join.GroupByOptions{Fanout: 128, Threads: 4})) == 0 {
				b.Fatal("no groups")
			}
		}
	})
}
