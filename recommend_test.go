package partsort

import (
	"testing"

	"repro/internal/gen"
)

func TestRecommendMatchesPaperConclusion(t *testing.T) {
	cases := []struct {
		name string
		w    Workload
		want Algorithm
	}{
		{"dense 32-bit", Workload{N: 1 << 30, DomainBits: 30, KeyBits: 32}, LSB},
		{"compressed dictionary codes", Workload{N: 1 << 20, DomainBits: 18, KeyBits: 32}, LSB},
		{"sparse 64-bit", Workload{N: 1 << 30, DomainBits: 64, KeyBits: 64}, MSB},
		{"sparse 32-bit small n", Workload{N: 1 << 16, DomainBits: 32, KeyBits: 32}, MSB},
		{"space tight", Workload{N: 1 << 30, DomainBits: 30, KeyBits: 32, SpaceTight: true}, MSB},
		{"heavy skew", Workload{N: 1 << 30, DomainBits: 30, KeyBits: 32, HeavySkew: true}, CMP},
		{"stability wins over everything", Workload{N: 1 << 30, DomainBits: 64, KeyBits: 64, SpaceTight: true, NeedStable: true}, LSB},
		{"unknown domain 64-bit", Workload{N: 1 << 20, KeyBits: 64}, MSB},
	}
	for _, c := range cases {
		if got := Recommend(c.w); got != c.want {
			t.Errorf("%s: Recommend = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestAlgorithmString(t *testing.T) {
	if LSB.String() != "LSB" || MSB.String() != "MSB" || CMP.String() != "CMP" || Algorithm(9).String() != "unknown" {
		t.Fatal("algorithm names wrong")
	}
}

func TestAutoSort(t *testing.T) {
	// Dense domain: should pick LSB.
	n := 1 << 14
	keys := gen.Dense[uint32](n, 3)
	vals := RIDs[uint32](n)
	if got := Sort(keys, vals, false, false, &SortOptions{Threads: 2}); got != LSB {
		t.Fatalf("dense input picked %v", got)
	}
	if !IsSorted(keys) {
		t.Fatal("not sorted")
	}
	// Sparse domain: MSB.
	keys = gen.Uniform[uint32](n, 0, 5)
	vals = RIDs[uint32](n)
	if got := Sort(keys, vals, false, false, &SortOptions{Threads: 2}); got != MSB {
		t.Fatalf("sparse input picked %v", got)
	}
	if !IsSorted(keys) {
		t.Fatal("not sorted")
	}
	// Stability requirement: LSB regardless.
	keys = gen.Uniform[uint32](n, 0, 7)
	vals = RIDs[uint32](n)
	if got := Sort(keys, vals, true, false, &SortOptions{Threads: 2}); got != LSB {
		t.Fatalf("stable requirement picked %v", got)
	}
	if !IsStableSorted(keys, vals) {
		t.Fatal("not stable")
	}
}
