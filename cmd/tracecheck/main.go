// Command tracecheck validates a Chrome trace-event JSON file produced by
// sortcli/partcli -trace, plus (optionally) the counter invariants of a
// matching sortcli -json stats file. It is the CI gate behind verify.sh's
// observability smoke: exit 0 means the trace is well-formed and the
// requested structural properties hold.
//
// Examples:
//
//	sortcli -n 100000 -algo lsb -trace t.json -json > stats.json
//	tracecheck -require-pass -workers 4 -stats stats.json t.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// event mirrors the Chrome trace-event fields the sinks emit.
type event struct {
	Name string           `json:"name"`
	Cat  string           `json:"cat"`
	Ph   string           `json:"ph"`
	Ts   *float64         `json:"ts"`
	Dur  *float64         `json:"dur"`
	Pid  *int             `json:"pid"`
	Tid  *int             `json:"tid"`
	Args map[string]int64 `json:"args"`
}

// stats mirrors the subset of sortcli -json output that tracecheck
// reconciles against the trace.
type stats struct {
	Algo     string `json:"algo"`
	N        uint64 `json:"n"`
	Passes   uint64 `json:"passes"`
	Counters struct {
		TuplesPartitioned uint64 `json:"tuples_partitioned"`
	} `json:"counters"`
}

func main() {
	requirePass := flag.Bool("require-pass", false, "require at least one span with cat \"pass\"")
	workers := flag.Int("workers", 0, "require spans from at least this many distinct worker tids (cat \"worker\")")
	statsFile := flag.String("stats", "", "sortcli -json output to reconcile: for lsb, tuples_partitioned must equal passes*n")
	flag.Parse()
	if flag.NArg() != 1 {
		fail("usage: tracecheck [flags] <trace.json>")
	}

	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err.Error())
	}
	var events []event
	if err := json.Unmarshal(data, &events); err != nil {
		fail("not a JSON array of trace events: " + err.Error())
	}

	passSpans := 0
	workerTids := map[int]bool{}
	for i, e := range events {
		switch e.Ph {
		case "X":
			if e.Name == "" || e.Ts == nil || e.Dur == nil || e.Pid == nil || e.Tid == nil {
				fail(fmt.Sprintf("event %d: complete event missing name/ts/dur/pid/tid", i))
			}
			if *e.Ts < 0 || *e.Dur < 0 {
				fail(fmt.Sprintf("event %d: negative ts or dur", i))
			}
		case "i":
			if e.Name == "" || e.Ts == nil {
				fail(fmt.Sprintf("event %d: instant event missing name/ts", i))
			}
		default:
			fail(fmt.Sprintf("event %d: unexpected phase %q", i, e.Ph))
		}
		switch e.Cat {
		case "pass":
			passSpans++
		case "worker":
			workerTids[*e.Tid] = true
		}
	}

	if *requirePass && passSpans == 0 {
		fail("no spans with cat \"pass\" in trace")
	}
	if len(workerTids) < *workers {
		fail(fmt.Sprintf("spans from %d distinct worker tids, want >= %d", len(workerTids), *workers))
	}

	if *statsFile != "" {
		sdata, err := os.ReadFile(*statsFile)
		if err != nil {
			fail(err.Error())
		}
		var st stats
		if err := json.Unmarshal(sdata, &st); err != nil {
			fail("stats file: " + err.Error())
		}
		// LSB scatters all n tuples exactly once per pass; MSB/CMP recurse
		// and repartition sub-ranges, so equality holds only for lsb.
		if st.Algo == "lsb" {
			want := st.Passes * st.N
			if st.Counters.TuplesPartitioned != want {
				fail(fmt.Sprintf("lsb counter reconciliation: tuples_partitioned = %d, want passes*n = %d*%d = %d",
					st.Counters.TuplesPartitioned, st.Passes, st.N, want))
			}
		}
	}

	fmt.Printf("tracecheck: %d events ok (%d pass spans, %d worker tids)\n",
		len(events), passSpans, len(workerTids))
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "tracecheck:", msg)
	os.Exit(1)
}
