// Command tracecheck validates a Chrome trace-event JSON file produced by
// sortcli/partcli -trace, plus (optionally) the counter invariants of a
// matching sortcli -json stats file. It is the CI gate behind verify.sh's
// observability smoke: exit 0 means the trace is well-formed and the
// requested structural properties hold.
//
// Examples:
//
//	sortcli -n 100000 -algo lsb -trace t.json -json > stats.json
//	tracecheck -require-pass -workers 4 -stats stats.json t.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
)

// event mirrors the Chrome trace-event fields the sinks emit.
type event struct {
	Name string           `json:"name"`
	Cat  string           `json:"cat"`
	Ph   string           `json:"ph"`
	Ts   *float64         `json:"ts"`
	Dur  *float64         `json:"dur"`
	Pid  *int             `json:"pid"`
	Tid  *int             `json:"tid"`
	Args map[string]int64 `json:"args"`
}

// stats mirrors the subset of sortcli -json output that tracecheck
// reconciles against the trace.
type stats struct {
	Algo     string `json:"algo"`
	N        uint64 `json:"n"`
	Passes   uint64 `json:"passes"`
	Regions  int    `json:"regions"`
	Counters struct {
		TuplesPartitioned uint64 `json:"tuples_partitioned"`
	} `json:"counters"`
	PhaseNs  map[string]int64    `json:"phase_ns"`
	SpanHist map[string]spanStat `json:"span_hist"`
}

// spanStat mirrors one sortcli span_hist entry (the live histogram
// aggregate for one "cat/name" span key).
type spanStat struct {
	Count uint64 `json:"count"`
	SumNs uint64 `json:"sum_ns"`
}

func main() {
	requirePass := flag.Bool("require-pass", false, "require at least one span with cat \"pass\"")
	workers := flag.Int("workers", 0, "require spans from at least this many distinct worker tids (cat \"worker\")")
	statsFile := flag.String("stats", "", "sortcli -json output to reconcile: for lsb, tuples_partitioned must equal passes*n")
	checkHist := flag.Bool("check-hist", false, "reconcile the stats file's span_hist against the trace: per span key the histogram sample count must equal the trace span count and the duration sums must agree; for single-region lsb the summed pass durations must bracket the phase wall clocks (requires -stats)")
	flag.Parse()
	if flag.NArg() != 1 {
		fail("usage: tracecheck [flags] <trace.json>")
	}

	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err.Error())
	}
	var events []event
	if err := json.Unmarshal(data, &events); err != nil {
		fail("not a JSON array of trace events: " + err.Error())
	}

	passSpans := 0
	workerTids := map[int]bool{}
	type agg struct {
		count uint64
		sumUs float64
	}
	traceAgg := map[string]agg{}
	for i, e := range events {
		switch e.Ph {
		case "X":
			if e.Name == "" || e.Ts == nil || e.Dur == nil || e.Pid == nil || e.Tid == nil {
				fail(fmt.Sprintf("event %d: complete event missing name/ts/dur/pid/tid", i))
			}
			if *e.Ts < 0 || *e.Dur < 0 {
				fail(fmt.Sprintf("event %d: negative ts or dur", i))
			}
			a := traceAgg[e.Cat+"/"+e.Name]
			a.count++
			a.sumUs += *e.Dur
			traceAgg[e.Cat+"/"+e.Name] = a
		case "i":
			if e.Name == "" || e.Ts == nil {
				fail(fmt.Sprintf("event %d: instant event missing name/ts", i))
			}
		default:
			fail(fmt.Sprintf("event %d: unexpected phase %q", i, e.Ph))
		}
		switch e.Cat {
		case "pass":
			passSpans++
		case "worker":
			workerTids[*e.Tid] = true
		}
	}

	if *requirePass && passSpans == 0 {
		fail("no spans with cat \"pass\" in trace")
	}
	if len(workerTids) < *workers {
		fail(fmt.Sprintf("spans from %d distinct worker tids, want >= %d", len(workerTids), *workers))
	}

	var st stats
	if *statsFile != "" {
		sdata, err := os.ReadFile(*statsFile)
		if err != nil {
			fail(err.Error())
		}
		if err := json.Unmarshal(sdata, &st); err != nil {
			fail("stats file: " + err.Error())
		}
		// LSB scatters all n tuples exactly once per pass; MSB/CMP recurse
		// and repartition sub-ranges, so equality holds only for lsb.
		if st.Algo == "lsb" {
			want := st.Passes * st.N
			if st.Counters.TuplesPartitioned != want {
				fail(fmt.Sprintf("lsb counter reconciliation: tuples_partitioned = %d, want passes*n = %d*%d = %d",
					st.Counters.TuplesPartitioned, st.Passes, st.N, want))
			}
		}
	}

	if *checkHist {
		if *statsFile == "" {
			fail("-check-hist requires -stats")
		}
		if len(st.SpanHist) == 0 {
			fail("-check-hist: stats file carries no span_hist (need sortcli -json with observability on)")
		}
		// Both views are fed from the same event stream (the metrics sink
		// tees to the trace sink), so per span key the histogram sample
		// count must equal the trace span count exactly, and the duration
		// sums must agree up to the trace's microsecond serialization.
		for k, a := range traceAgg {
			h, ok := st.SpanHist[k]
			if !ok {
				fail(fmt.Sprintf("span key %q has %d trace spans but no span_hist entry", k, a.count))
			}
			if h.Count != a.count {
				fail(fmt.Sprintf("span key %q: histogram count %d != trace span count %d", k, h.Count, a.count))
			}
			traceSumNs := a.sumUs * 1e3
			tol := 0.001*traceSumNs + 1e3*float64(a.count)
			if diff := math.Abs(float64(h.SumNs) - traceSumNs); diff > tol {
				fail(fmt.Sprintf("span key %q: histogram sum %d ns vs trace sum %.0f ns (diff %.0f > tol %.0f)",
					k, h.SumNs, traceSumNs, diff, tol))
			}
		}
		for k, h := range st.SpanHist {
			if _, ok := traceAgg[k]; !ok && h.Count > 0 {
				fail(fmt.Sprintf("span_hist key %q has %d samples but no trace spans", k, h.Count))
			}
		}
		// Wall-clock reconciliation, meaningful where spans don't overlap:
		// a single-region lsb run nests each pass span inside (or just
		// around) one phase timer on one goroutine, so the summed pass
		// durations must bracket the partition/shuffle/local wall clocks.
		// Tolerances are generous — this is a unit-error and double-count
		// gate, not a timing assertion.
		if st.Algo == "lsb" && st.Regions <= 1 && len(st.PhaseNs) > 0 {
			var passNs float64
			for k, a := range traceAgg {
				if strings.HasPrefix(k, "pass/") {
					passNs += a.sumUs * 1e3
				}
			}
			moveNs := float64(st.PhaseNs["partition"] + st.PhaseNs["shuffle"] + st.PhaseNs["local"])
			const slack = 2e6 // 2 ms absolute slack for span begin/end skew
			if passNs > 1.25*moveNs+slack {
				fail(fmt.Sprintf("pass spans sum to %.0f ns, exceeding 1.25x the partition+shuffle+local wall clock (%.0f ns)", passNs, moveNs))
			}
			if lower := float64(st.PhaseNs["partition"]+st.PhaseNs["local"]); passNs < 0.5*lower-slack {
				fail(fmt.Sprintf("pass spans sum to %.0f ns, under half the partition+local wall clock (%.0f ns)", passNs, lower))
			}
		}
		fmt.Printf("tracecheck: span_hist reconciled over %d span keys\n", len(traceAgg))
	}

	fmt.Printf("tracecheck: %d events ok (%d pass spans, %d worker tids)\n",
		len(events), passSpans, len(workerTids))
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "tracecheck:", msg)
	os.Exit(1)
}
