// Command tracecli replays partitioning address streams through the
// trace-driven cache+TLB simulator with a configurable machine profile —
// an exploration tool for the memory-hierarchy effects of Section 3.2.
//
// Examples:
//
//	tracecli -fanout 1024                  # buffered vs unbuffered at one fanout
//	tracecli -sweep                        # the full fanout sweep
//	tracecli -tlb 32 -l1 16384 -sweep      # a smaller machine
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/gen"
	"repro/internal/memmodel"
	"repro/internal/pfunc"
)

func main() {
	var (
		n       = flag.Int("n", 1<<18, "tuples to trace")
		fanout  = flag.Int("fanout", 1024, "partitions (power of two)")
		sweep   = flag.Bool("sweep", false, "sweep fanouts 8..8192 instead of one")
		inplace = flag.Bool("inplace", false, "trace the in-place (swap cycle) variants")
		machine = flag.String("machine", "paper", "base machine profile: paper, modern")
		profile = flag.String("profile", "", "JSON file overriding memmodel.Profile fields")
		dump    = flag.Bool("dump-profile", false, "print the effective profile as JSON and exit")
		tlb     = flag.Int("tlb", 0, "override TLB entries")
		l1      = flag.Int("l1", 0, "override L1 bytes")
		l2      = flag.Int("l2", 0, "override L2 bytes")
		pages   = flag.Int("page", 0, "override page bytes")
	)
	flag.Parse()

	var prof memmodel.Profile
	switch *machine {
	case "paper":
		prof = memmodel.PaperProfile()
	case "modern":
		prof = memmodel.ModernProfile()
	default:
		fmt.Fprintln(os.Stderr, "tracecli: unknown machine", *machine)
		os.Exit(1)
	}
	if *profile != "" {
		data, err := os.ReadFile(*profile)
		if err == nil {
			err = json.Unmarshal(data, &prof)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracecli:", err)
			os.Exit(1)
		}
	}
	if *tlb > 0 {
		prof.TLBEntries = *tlb
	}
	if *l1 > 0 {
		prof.L1Bytes = *l1
	}
	if *l2 > 0 {
		prof.L2Bytes = *l2
	}
	if *pages > 0 {
		prof.PageBytes = *pages
	}
	if *dump {
		out, _ := json.MarshalIndent(prof, "", "  ")
		fmt.Println(string(out))
		return
	}

	fanouts := []int{*fanout}
	if *sweep {
		fanouts = []int{8, 32, 128, 512, 2048, 8192}
	}

	keys := gen.Uniform[uint32](*n, 0, 7)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "P\tvariant\tTLBmiss/t\tL1miss/t\tL3miss/t\tlatency ns/t")
	for _, f := range fanouts {
		if f&(f-1) != 0 {
			fmt.Fprintln(os.Stderr, "tracecli: fanout must be a power of two")
			os.Exit(1)
		}
		fn := pfunc.NewHash[uint32](f)
		parts := make([]int, *n)
		for i, k := range keys {
			parts[i] = fn.Partition(k)
		}
		for _, buffered := range []bool{false, true} {
			var sim *memmodel.CacheSim
			name := map[bool]string{false: "unbuffered", true: "buffered"}[buffered]
			if *inplace {
				sim = memmodel.InPlacePartitionTrace(prof, parts, f, 8, buffered)
				name = "inplace-" + name
			} else {
				sim = memmodel.PartitionTrace(prof, parts, f, 8, buffered)
			}
			nn := float64(*n)
			fmt.Fprintf(w, "%d\t%s\t%.3f\t%.3f\t%.3f\t%.1f\n",
				f, name,
				float64(sim.TLBMiss)/nn, float64(sim.L1Miss)/nn,
				float64(sim.L3Miss)/nn, sim.StreamNs()/nn)
		}
	}
	w.Flush()
}
