// Command sortcli sorts columnar key/payload files (or generated
// workloads) with the paper's three sorting algorithms.
//
// File format: raw little-endian unsigned integers of the selected width,
// one file per column. Without -keys, a workload is generated.
//
// Examples:
//
//	sortcli -n 10000000 -dist zipf -theta 1.2 -algo msb -threads 4
//	sortcli -keys keys.bin -vals rids.bin -width 64 -algo lsb -out sorted
//	sortcli -n 1000000 -algo lsb -stats -json          # machine-readable stats
//	sortcli -n 1000000 -algo lsb -trace trace.json     # open in Perfetto
//	sortcli -n 1000000 -algo lsb -gotrace go.trace     # go tool trace go.trace
//	sortcli -n 1000000 -algo cmp -resilient -timeout 30s -max-aux 268435456
//
// Exit codes: 0 success; 1 I/O or usage problems; 2 invalid arguments
// (*ArgError); 3 a contained worker panic (*InternalError, stack on
// stderr); 4 cancellation or deadline expiry; 5 auxiliary-memory budget
// exceeded (*ResourceError).
package main

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime/trace"
	"strings"
	"syscall"
	"time"

	partsort "repro"
	"repro/internal/gen"
	"repro/internal/kv"
	"repro/internal/obs"
)

// cfg bundles the command-line configuration.
type cfg struct {
	n       int
	dist    string
	theta   float64
	domain  uint64
	algo    string
	threads int
	regions int
	keysIn  string
	valsIn  string
	out     string
	stats   bool
	jsonOut bool
	seed    uint64
	dict    bool
	verify  bool
	repeat  int

	resilient bool
	timeout   time.Duration
	maxAux    int64
}

// metricsSink, when non-nil, is the live histogram aggregator wrapped
// around the trace sink; run reads its summary into the JSON result.
var metricsSink *obs.MetricsSink

func main() {
	var c cfg
	flag.IntVar(&c.n, "n", 1<<20, "tuples to generate when no -keys file is given")
	flag.StringVar(&c.dist, "dist", "uniform", "generated distribution: uniform, dense, zipf, sorted, reversed")
	flag.Float64Var(&c.theta, "theta", 1.0, "Zipf parameter for -dist zipf")
	flag.Uint64Var(&c.domain, "domain", 0, "key domain size (0 = full width)")
	flag.StringVar(&c.algo, "algo", "lsb", "sorting algorithm: lsb, msb, cmp")
	width := flag.Int("width", 32, "key/payload width in bits: 32 or 64")
	flag.IntVar(&c.threads, "threads", 4, "worker goroutines")
	flag.IntVar(&c.regions, "regions", 1, "simulated NUMA regions")
	flag.StringVar(&c.keysIn, "keys", "", "key column file (raw little-endian)")
	flag.StringVar(&c.valsIn, "vals", "", "payload column file (default: record ids)")
	flag.StringVar(&c.out, "out", "", "output prefix; writes <out>.keys and <out>.vals")
	flag.BoolVar(&c.stats, "stats", false, "print the per-phase breakdown and event counters")
	flag.BoolVar(&c.jsonOut, "json", false, "print the result as one machine-readable JSON object")
	flag.Uint64Var(&c.seed, "seed", 42, "generator seed")
	flag.BoolVar(&c.dict, "dict", false, "dictionary-compress keys before sorting (order-preserving), decode after — reduces LSB passes on sparse domains")
	flag.BoolVar(&c.verify, "verify", false, "keep a copy of the input and verify the output multiset (and stability for lsb)")
	flag.IntVar(&c.repeat, "repeat", 1, "sort the input this many times, restoring it between runs — keeps the process busy for live metric scrapes")
	flag.BoolVar(&c.resilient, "resilient", false, "run under the retry/fallback supervisor: contained worker failures retry in place, then degrade to conservative and in-place plans")
	flag.DurationVar(&c.timeout, "timeout", 0, "overall deadline for the sort (0 = none); expiry exits with code 4")
	flag.Int64Var(&c.maxAux, "max-aux", 0, "auxiliary-memory budget in bytes (0 = half of available memory); exceeding it exits with code 5 (or degrades under -resilient)")
	traceOut := flag.String("trace", "", "write a span trace to this file: .jsonl extension selects JSON-lines, anything else Chrome trace-event JSON (open in Perfetto)")
	gotrace := flag.String("gotrace", "", "write a runtime/trace file for `go tool trace`")
	metricsAddr := flag.String("metrics-addr", "", "serve live telemetry on this address while sorting (e.g. 127.0.0.1:9090): Prometheus text on /metrics, expvar JSON on /debug/vars, pprof with algo/phase/worker profile labels on /debug/pprof/; SIGINT shuts the endpoint down gracefully")
	flag.Parse()

	// Start the Go execution tracer first so the obs session sees it and
	// annotates passes as runtime/trace regions.
	if *gotrace != "" {
		f, err := os.Create(*gotrace)
		if err != nil {
			fatal(err.Error())
		}
		if err := trace.Start(f); err != nil {
			fatal(err.Error())
		}
		defer trace.Stop()
	}
	if *traceOut != "" || c.stats || c.jsonOut || *metricsAddr != "" {
		var sink partsort.TraceSink
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fatal(err.Error())
			}
			defer f.Close()
			if strings.HasSuffix(*traceOut, ".jsonl") {
				sink = partsort.NewJSONLSink(f)
			} else {
				sink = partsort.NewChromeTraceSink(f)
			}
		}
		// Always aggregate spans into the live histogram registry: it
		// feeds both the -json span_hist summary and /metrics.
		metricsSink = obs.NewMetricsSink(nil, sink)
		partsort.StartObservability(metricsSink)
		defer func() {
			if err := partsort.StopObservability(); err != nil {
				fatal("closing trace sink: " + err.Error())
			}
		}()
	}
	if *metricsAddr != "" {
		srv, err := partsort.ServeMetrics(*metricsAddr)
		if err != nil {
			fatal("metrics endpoint: " + err.Error())
		}
		partsort.EnableProfileLabels(true)
		srv.ShutdownOnSignal(os.Interrupt, syscall.SIGTERM)
		if !c.jsonOut {
			fmt.Printf("serving live metrics on %s/metrics (pprof on /debug/pprof/)\n", srv.URL())
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		}()
	}

	switch *width {
	case 32:
		run[uint32](c)
	case 64:
		run[uint64](c)
	default:
		fatal("width must be 32 or 64")
	}
}

// jsonResult is the machine-readable output of -json: the figure-harness
// and CI contract (phase breakdown in nanoseconds, pass count, NUMA
// traffic, region bounds, and the observability counter snapshot).
type jsonResult struct {
	Algo         string               `json:"algo"`
	N            int                  `json:"n"`
	WidthBits    int                  `json:"width_bits"`
	Threads      int                  `json:"threads"`
	Regions      int                  `json:"regions"`
	Dist         string               `json:"dist,omitempty"`
	ElapsedNs    int64                `json:"elapsed_ns"`
	MTuplesPerS  float64              `json:"mtuples_per_s"`
	Passes       int                  `json:"passes"`
	RemoteBytes  uint64               `json:"remote_bytes"`
	PeakAuxBytes uint64               `json:"peak_aux_bytes"`
	RegionBounds []int                `json:"region_bounds,omitempty"`
	PhaseNs      map[string]int64     `json:"phase_ns"`
	Counters     partsort.ObsCounters `json:"counters"`
	// SpanHist is the live latency-histogram summary per span key
	// ("cat/name"), aggregated by the metrics sink — what tracecheck
	// reconciles against the trace file and the phase wall clocks.
	SpanHist map[string]obs.SpanStat `json:"span_hist,omitempty"`
	Verified *bool                   `json:"verified,omitempty"`
}

func run[K kv.Key](c cfg) {
	var keys, vals []K
	if c.keysIn != "" {
		keys = mustRead[K](c.keysIn)
		if c.valsIn != "" {
			vals = mustRead[K](c.valsIn)
			if len(vals) != len(keys) {
				fatal("key and payload files have different lengths")
			}
		} else {
			vals = partsort.RIDs[K](len(keys))
		}
	} else {
		switch c.dist {
		case "uniform":
			keys = gen.Uniform[K](c.n, c.domain, c.seed)
		case "dense":
			keys = gen.Dense[K](c.n, c.seed)
		case "zipf":
			d := c.domain
			if d == 0 {
				d = uint64(c.n)
			}
			keys = gen.ZipfKeys[K](c.n, d, c.theta, c.seed)
		case "sorted":
			keys = gen.Sorted[K](c.n, c.domain, c.seed)
		case "reversed":
			keys = gen.Reversed[K](c.n, c.domain, c.seed)
		default:
			fatal("unknown distribution " + c.dist)
		}
		vals = partsort.RIDs[K](len(keys))
	}

	var origK, origV []K
	if c.verify {
		origK = append([]K(nil), keys...)
		origV = append([]K(nil), vals...)
	}

	var d *partsort.Dictionary[K]
	if c.dict {
		var err error
		dictStart := time.Now()
		d = partsort.BuildDictionary(keys)
		keys, err = d.EncodeAll(keys)
		if err != nil {
			fatal(err.Error())
		}
		if !c.jsonOut {
			fmt.Printf("dictionary: %d distinct values -> %d-bit dense codes (built in %.2f ms)\n",
				d.Cardinality(), bitsFor(d.Cardinality()), float64(time.Since(dictStart).Microseconds())/1000)
		}
	}

	var baseK, baseV []K
	if c.repeat > 1 {
		baseK = append([]K(nil), keys...)
		baseV = append([]K(nil), vals...)
	}
	var st partsort.SortStats
	// A workspace routes every internal scratch array through the metered
	// arena, so st.PeakAuxBytes reports the run's true auxiliary footprint
	// (and repeat runs reuse buffers instead of reallocating).
	wsp := partsort.NewWorkspace()
	defer wsp.Close()
	opt := &partsort.SortOptions{Threads: c.threads, Regions: c.regions, Stats: &st, Workspace: wsp, MaxAuxBytes: c.maxAux}
	var algo partsort.Algorithm
	switch c.algo {
	case "lsb":
		algo = partsort.LSB
	case "msb":
		algo = partsort.MSB
	case "cmp":
		algo = partsort.CMP
	default:
		fatal("unknown algorithm " + c.algo)
	}
	ctx := context.Background()
	if c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	var rst partsort.RetryStats
	start := time.Now()
	for r := 0; r < max(c.repeat, 1); r++ {
		if r > 0 {
			copy(keys, baseK)
			copy(vals, baseV)
		}
		var err error
		if c.resilient {
			err = partsort.SortResilientCtx(ctx, algo, keys, vals, opt, &partsort.RetryPolicy{Stats: &rst})
		} else {
			switch algo {
			case partsort.LSB:
				err = partsort.TrySortLSBCtx(ctx, keys, vals, opt)
			case partsort.MSB:
				err = partsort.TrySortMSBCtx(ctx, keys, vals, opt)
			default:
				err = partsort.TrySortCmpCtx(ctx, keys, vals, opt)
			}
		}
		if err != nil {
			exitErr(err)
		}
	}
	elapsed := time.Since(start)
	if c.resilient && c.stats && !c.jsonOut && rst.Attempts > 1 {
		fmt.Printf("supervisor: %d attempts, final stage %d, degraded=%v, backoff %v\n",
			rst.Attempts, rst.Stage, rst.Degraded, rst.Backoff)
	}

	if !partsort.IsSorted(keys) {
		fatal("output not sorted (bug)")
	}
	if d != nil {
		var err error
		keys, err = d.DecodeAll(keys)
		if err != nil {
			fatal(err.Error())
		}
		if !partsort.IsSorted(keys) {
			fatal("decoded output not sorted (order-preservation bug)")
		}
	}

	var verified *bool
	if c.verify {
		if !partsort.SameMultiset(origK, origV, keys, vals) {
			fatal("verification failed: output tuple multiset differs from input")
		}
		if c.algo == "lsb" && c.valsIn == "" && !partsort.IsStableSorted(keys, vals) {
			fatal("verification failed: lsb output not stable")
		}
		ok := true
		verified = &ok
	}

	rate := 0.0
	if elapsed > 0 && len(keys) > 0 {
		rate = float64(len(keys)) * float64(max(c.repeat, 1)) / elapsed.Seconds() / 1e6
	}

	if c.jsonOut {
		res := jsonResult{
			Algo:         c.algo,
			N:            len(keys),
			WidthBits:    kv.Width[K](),
			Threads:      c.threads,
			Regions:      c.regions,
			ElapsedNs:    elapsed.Nanoseconds(),
			MTuplesPerS:  rate,
			Passes:       st.Passes,
			RemoteBytes:  st.RemoteBytes,
			PeakAuxBytes: st.PeakAuxBytes,
			RegionBounds: st.RegionBounds,
			PhaseNs: map[string]int64{
				"alloc":     st.Alloc.Nanoseconds(),
				"histogram": st.Histogram.Nanoseconds(),
				"partition": st.Partition.Nanoseconds(),
				"shuffle":   st.Shuffle.Nanoseconds(),
				"local":     st.LocalRadix.Nanoseconds(),
				"cache":     st.CacheSort.Nanoseconds(),
				"total":     st.Total().Nanoseconds(),
			},
			Counters: st.Counters,
			Verified: verified,
		}
		if metricsSink != nil {
			res.SpanHist = metricsSink.Summary()
		}
		if c.keysIn == "" {
			res.Dist = c.dist
		}
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(res); err != nil {
			fatal(err.Error())
		}
	} else {
		fmt.Printf("%s sorted %d %d-bit tuples in %.2f ms (%.1f Mtuples/s)\n",
			c.algo, len(keys), kv.Width[K](), float64(elapsed.Microseconds())/1000, rate)
		if c.stats {
			fmt.Printf("  histogram %v  partition %v  shuffle %v  local %v  cache %v  (%d passes, peak aux %d B)\n",
				st.Histogram, st.Partition, st.Shuffle, st.LocalRadix, st.CacheSort, st.Passes, st.PeakAuxBytes)
			cs := st.Counters
			fmt.Printf("  counters: tuples %d  flushes %d  swap-cycles %d  sync-claims %d  parks %d  remote %d B  samples %d  comb-leaves %d\n",
				cs.TuplesPartitioned, cs.BufferFlushes, cs.SwapCycles, cs.SyncClaims,
				cs.SyncParks, cs.RemoteBytes, cs.SplitterSamples, cs.CombSortLeaves)
		}
		if verified != nil {
			fmt.Println("verified: sorted, multiset preserved" +
				map[bool]string{true: ", stable", false: ""}[c.algo == "lsb" && c.valsIn == ""])
		}
	}

	if c.out != "" {
		mustWrite(c.out+".keys", keys)
		mustWrite(c.out+".vals", vals)
		if !c.jsonOut {
			fmt.Printf("wrote %s.keys and %s.vals\n", c.out, c.out)
		}
	}
}

func mustRead[K kv.Key](path string) []K {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err.Error())
	}
	w := kv.Width[K]() / 8
	if len(data)%w != 0 {
		fatal(fmt.Sprintf("%s: size %d not a multiple of %d bytes", path, len(data), w))
	}
	out := make([]K, len(data)/w)
	for i := range out {
		if w == 4 {
			out[i] = K(binary.LittleEndian.Uint32(data[i*4:]))
		} else {
			out[i] = K(binary.LittleEndian.Uint64(data[i*8:]))
		}
	}
	return out
}

func mustWrite[K kv.Key](path string, col []K) {
	w := kv.Width[K]() / 8
	data := make([]byte, len(col)*w)
	for i, v := range col {
		if w == 4 {
			binary.LittleEndian.PutUint32(data[i*4:], uint32(v))
		} else {
			binary.LittleEndian.PutUint64(data[i*8:], uint64(v))
		}
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err.Error())
	}
}

func bitsFor(card int) int {
	b := 0
	for 1<<b < card {
		b++
	}
	return max(b, 1)
}

// exitErr maps a Try/supervisor error onto the documented exit codes,
// printing the contained worker stack for *InternalError so the failure
// site is diagnosable from the terminal.
func exitErr(err error) {
	fmt.Fprintln(os.Stderr, "sortcli:", err)
	var ae *partsort.ArgError
	var ie *partsort.InternalError
	var re *partsort.ResourceError
	switch {
	case errors.As(err, &ae):
		os.Exit(2)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		os.Exit(4)
	case errors.As(err, &re):
		os.Exit(5)
	case errors.As(err, &ie):
		if len(ie.Stack) > 0 {
			fmt.Fprintf(os.Stderr, "contained worker stack:\n%s\n", ie.Stack)
		}
		os.Exit(3)
	}
	os.Exit(1)
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "sortcli:", msg)
	os.Exit(1)
}
