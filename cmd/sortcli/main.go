// Command sortcli sorts columnar key/payload files (or generated
// workloads) with the paper's three sorting algorithms.
//
// File format: raw little-endian unsigned integers of the selected width,
// one file per column. Without -keys, a workload is generated.
//
// Examples:
//
//	sortcli -n 10000000 -dist zipf -theta 1.2 -algo msb -threads 4
//	sortcli -keys keys.bin -vals rids.bin -width 64 -algo lsb -out sorted
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"time"

	partsort "repro"
	"repro/internal/gen"
	"repro/internal/kv"
)

func main() {
	var (
		n       = flag.Int("n", 1<<20, "tuples to generate when no -keys file is given")
		dist    = flag.String("dist", "uniform", "generated distribution: uniform, dense, zipf, sorted, reversed")
		theta   = flag.Float64("theta", 1.0, "Zipf parameter for -dist zipf")
		domain  = flag.Uint64("domain", 0, "key domain size (0 = full width)")
		algo    = flag.String("algo", "lsb", "sorting algorithm: lsb, msb, cmp")
		width   = flag.Int("width", 32, "key/payload width in bits: 32 or 64")
		threads = flag.Int("threads", 4, "worker goroutines")
		regions = flag.Int("regions", 1, "simulated NUMA regions")
		keysIn  = flag.String("keys", "", "key column file (raw little-endian)")
		valsIn  = flag.String("vals", "", "payload column file (default: record ids)")
		out     = flag.String("out", "", "output prefix; writes <out>.keys and <out>.vals")
		stats   = flag.Bool("stats", false, "print the per-phase breakdown")
		seed    = flag.Uint64("seed", 42, "generator seed")
		dict    = flag.Bool("dict", false, "dictionary-compress keys before sorting (order-preserving), decode after — reduces LSB passes on sparse domains")
		verify  = flag.Bool("verify", false, "keep a copy of the input and verify the output multiset (and stability for lsb)")
	)
	flag.Parse()

	switch *width {
	case 32:
		run[uint32](*n, *dist, *theta, *domain, *algo, *threads, *regions, *keysIn, *valsIn, *out, *stats, *seed, *dict, *verify)
	case 64:
		run[uint64](*n, *dist, *theta, *domain, *algo, *threads, *regions, *keysIn, *valsIn, *out, *stats, *seed, *dict, *verify)
	default:
		fatal("width must be 32 or 64")
	}
}

func run[K kv.Key](n int, dist string, theta float64, domain uint64, algo string,
	threads, regions int, keysIn, valsIn, out string, stats bool, seed uint64, dict, verify bool) {

	var keys, vals []K
	if keysIn != "" {
		keys = mustRead[K](keysIn)
		if valsIn != "" {
			vals = mustRead[K](valsIn)
			if len(vals) != len(keys) {
				fatal("key and payload files have different lengths")
			}
		} else {
			vals = partsort.RIDs[K](len(keys))
		}
	} else {
		switch dist {
		case "uniform":
			keys = gen.Uniform[K](n, domain, seed)
		case "dense":
			keys = gen.Dense[K](n, seed)
		case "zipf":
			d := domain
			if d == 0 {
				d = uint64(n)
			}
			keys = gen.ZipfKeys[K](n, d, theta, seed)
		case "sorted":
			keys = gen.Sorted[K](n, domain, seed)
		case "reversed":
			keys = gen.Reversed[K](n, domain, seed)
		default:
			fatal("unknown distribution " + dist)
		}
		vals = partsort.RIDs[K](len(keys))
	}

	var origK, origV []K
	if verify {
		origK = append([]K(nil), keys...)
		origV = append([]K(nil), vals...)
	}

	var d *partsort.Dictionary[K]
	if dict {
		var err error
		dictStart := time.Now()
		d = partsort.BuildDictionary(keys)
		keys, err = d.EncodeAll(keys)
		if err != nil {
			fatal(err.Error())
		}
		fmt.Printf("dictionary: %d distinct values -> %d-bit dense codes (built in %.2f ms)\n",
			d.Cardinality(), bitsFor(d.Cardinality()), float64(time.Since(dictStart).Microseconds())/1000)
	}

	var st partsort.SortStats
	opt := &partsort.SortOptions{Threads: threads, Regions: regions, Stats: &st}
	start := time.Now()
	switch algo {
	case "lsb":
		partsort.SortLSB(keys, vals, opt)
	case "msb":
		partsort.SortMSB(keys, vals, opt)
	case "cmp":
		partsort.SortCMP(keys, vals, opt)
	default:
		fatal("unknown algorithm " + algo)
	}
	elapsed := time.Since(start)

	if !partsort.IsSorted(keys) {
		fatal("output not sorted (bug)")
	}
	if d != nil {
		var err error
		keys, err = d.DecodeAll(keys)
		if err != nil {
			fatal(err.Error())
		}
		if !partsort.IsSorted(keys) {
			fatal("decoded output not sorted (order-preservation bug)")
		}
	}
	fmt.Printf("%s sorted %d %d-bit tuples in %.2f ms (%.1f Mtuples/s)\n",
		algo, len(keys), kv.Width[K](), float64(elapsed.Microseconds())/1000,
		float64(len(keys))/elapsed.Seconds()/1e6)
	if stats {
		fmt.Printf("  histogram %v  partition %v  shuffle %v  local %v  cache %v  (%d passes)\n",
			st.Histogram, st.Partition, st.Shuffle, st.LocalRadix, st.CacheSort, st.Passes)
	}

	if verify {
		if !partsort.SameMultiset(origK, origV, keys, vals) {
			fatal("verification failed: output tuple multiset differs from input")
		}
		if algo == "lsb" && valsIn == "" && !partsort.IsStableSorted(keys, vals) {
			fatal("verification failed: lsb output not stable")
		}
		fmt.Println("verified: sorted, multiset preserved" + map[bool]string{true: ", stable", false: ""}[algo == "lsb" && valsIn == ""])
	}

	if out != "" {
		mustWrite(out+".keys", keys)
		mustWrite(out+".vals", vals)
		fmt.Printf("wrote %s.keys and %s.vals\n", out, out)
	}
}

func mustRead[K kv.Key](path string) []K {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err.Error())
	}
	w := kv.Width[K]() / 8
	if len(data)%w != 0 {
		fatal(fmt.Sprintf("%s: size %d not a multiple of %d bytes", path, len(data), w))
	}
	out := make([]K, len(data)/w)
	for i := range out {
		if w == 4 {
			out[i] = K(binary.LittleEndian.Uint32(data[i*4:]))
		} else {
			out[i] = K(binary.LittleEndian.Uint64(data[i*8:]))
		}
	}
	return out
}

func mustWrite[K kv.Key](path string, col []K) {
	w := kv.Width[K]() / 8
	data := make([]byte, len(col)*w)
	for i, v := range col {
		if w == 4 {
			binary.LittleEndian.PutUint32(data[i*4:], uint32(v))
		} else {
			binary.LittleEndian.PutUint64(data[i*8:], uint64(v))
		}
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err.Error())
	}
}

func bitsFor(card int) int {
	b := 0
	for 1<<b < card {
		b++
	}
	return max(b, 1)
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "sortcli:", msg)
	os.Exit(1)
}
