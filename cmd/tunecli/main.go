// Command tunecli is the calibrate-once half of the auto-tuning workflow
// (README, "Auto-tuning"): it runs the calibration probes of
// internal/tune against this machine — or loads a previously saved
// profile — and prints the machine profile as JSON. With -out the
// profile is also written to a file for later reuse via
// partsort.LoadMachineProfile or SortOptions.Profile. With -plan-n it
// additionally prints the adaptive planner's decision for a described
// workload, so the cost model can be inspected without running a sort.
//
// Usage:
//
//	tunecli [-quick] [-out profile.json]
//	tunecli -load profile.json -plan-n 100000000 -plan-keybits 64
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/tune"
)

func main() {
	quick := flag.Bool("quick", false, "reduced probe budget: ~10x faster, noisier measurements")
	load := flag.String("load", "", "load a saved profile instead of calibrating")
	out := flag.String("out", "", "also write the profile JSON to this path")
	mem := flag.Bool("mem", false, "also print the memmodel projection of the profile")
	planN := flag.Int("plan-n", 0, "when > 0, also print the plan for a workload of this many tuples")
	planKeyBits := flag.Int("plan-keybits", 64, "key width for -plan-n (32 or 64)")
	planDomain := flag.Int("plan-domain", 0, "domain bits for -plan-n (0: full key width)")
	planHead := flag.Float64("plan-headmass", 0, "head mass in [0,1] for -plan-n (>= 0.4 means heavy skew)")
	planStable := flag.Bool("plan-stable", false, "require a stable sort for -plan-n")
	planTight := flag.Bool("plan-tight", false, "forbid the linear auxiliary array for -plan-n")
	planMaxBytes := flag.Int64("plan-maxbytes", 0, "auxiliary-memory budget in bytes for -plan-n (0: half of available memory)")
	flag.Parse()

	var p *tune.MachineProfile
	if *load != "" {
		var err error
		if p, err = tune.Load(*load); err != nil {
			fatal(err)
		}
	} else {
		p = tune.Calibrate(tune.Config{Quick: *quick})
	}
	if *out != "" {
		if err := p.Save(*out); err != nil {
			fatal(err)
		}
	}
	emit("profile", p)
	if *mem {
		emit("memmodel", p.Mem())
	}

	if *planN > 0 {
		domain := *planDomain
		if domain <= 0 {
			domain = *planKeyBits
		}
		w := tune.WorkloadStats{
			N:            *planN,
			SampleSize:   tune.DefaultSampleSize,
			DomainBits:   domain,
			DistinctFrac: 1 - *planHead,
			HeadMass:     *planHead,
			HeavySkew:    *planHead >= 0.4,
		}
		plan := tune.Choose(p, w, tune.Requirements{
			KeyBits:    *planKeyBits,
			NeedStable: *planStable,
			SpaceTight: *planTight,
			MaxBytes:   *planMaxBytes,
		})
		emit("plan", plan)
	}
}

// emit prints one labeled JSON document to stdout.
func emit(label string, v any) {
	data, err := json.MarshalIndent(map[string]any{label: v}, "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(data))
}

// fatal prints err and exits non-zero.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tunecli:", err)
	os.Exit(1)
}
