// Command partcli runs one partitioning pass over a generated workload
// and reports throughput and balance — a quick explorer for the paper's
// partitioning menu (variant x function x fanout).
//
// Examples:
//
//	partcli -fanout 1024 -fn radix -variant nip-ooc
//	partcli -fanout 360 -fn range -variant blocks -threads 4
//	partcli -fanout 64 -fn hash -variant sync -dist zipf -theta 1.2
//	partcli -fanout 1024 -variant ip-ooc -stats        # event counters
//	partcli -fanout 1024 -variant sync -trace t.json   # Perfetto trace
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"syscall"
	"time"

	partsort "repro"
	"repro/internal/gen"
	"repro/internal/kv"
	"repro/internal/part"
	"repro/internal/pfunc"
	"repro/internal/splitter"
)

func main() {
	var (
		n       = flag.Int("n", 1<<21, "tuples")
		fanout  = flag.Int("fanout", 256, "partitions (power of two for radix/hash)")
		fnName  = flag.String("fn", "radix", "partition function: radix, hash, range")
		variant = flag.String("variant", "nip-ooc", "variant: nip-ic, ip-ic, nip-ooc, ip-ooc, blocks, sync, parallel")
		dist    = flag.String("dist", "uniform", "distribution: uniform, dense, zipf")
		theta   = flag.Float64("theta", 1.2, "Zipf parameter")
		width   = flag.Int("width", 32, "key width: 32 or 64")
		threads = flag.Int("threads", 1, "workers (parallel/sync/blocks variants)")
		seed    = flag.Uint64("seed", 42, "generator seed")
		stats   = flag.Bool("stats", false, "print the observability counter snapshot for the pass")
		jsonOut = flag.Bool("json", false, "print the result as one machine-readable JSON object")
		traceTo = flag.String("trace", "", "write a span trace to this file: .jsonl extension selects JSON-lines, anything else Chrome trace-event JSON")
		mAddr   = flag.String("metrics-addr", "", "serve live telemetry on this address during the pass (e.g. 127.0.0.1:9090): Prometheus text on /metrics, expvar JSON on /debug/vars, pprof on /debug/pprof/; SIGINT shuts the endpoint down gracefully")
	)
	flag.Parse()

	if *traceTo != "" || *stats || *jsonOut || *mAddr != "" {
		var sink partsort.TraceSink
		if *traceTo != "" {
			f, err := os.Create(*traceTo)
			if err != nil {
				fatal(err.Error())
			}
			defer f.Close()
			if strings.HasSuffix(*traceTo, ".jsonl") {
				sink = partsort.NewJSONLSink(f)
			} else {
				sink = partsort.NewChromeTraceSink(f)
			}
		}
		partsort.StartObservability(partsort.NewMetricsSink(sink))
		defer func() {
			if err := partsort.StopObservability(); err != nil {
				fatal("closing trace sink: " + err.Error())
			}
		}()
	}
	if *mAddr != "" {
		srv, err := partsort.ServeMetrics(*mAddr)
		if err != nil {
			fatal("metrics endpoint: " + err.Error())
		}
		partsort.EnableProfileLabels(true)
		srv.ShutdownOnSignal(os.Interrupt, syscall.SIGTERM)
		if !*jsonOut {
			fmt.Printf("serving live metrics on %s/metrics (pprof on /debug/pprof/)\n", srv.URL())
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		}()
	}

	switch *width {
	case 32:
		run[uint32](*n, *fanout, *fnName, *variant, *dist, *theta, *threads, *seed, *stats, *jsonOut)
	case 64:
		run[uint64](*n, *fanout, *fnName, *variant, *dist, *theta, *threads, *seed, *stats, *jsonOut)
	default:
		fatal("width must be 32 or 64")
	}
}

// partResult is the machine-readable output of -json.
type partResult struct {
	Variant     string               `json:"variant"`
	Fn          string               `json:"fn"`
	Fanout      int                  `json:"fanout"`
	N           int                  `json:"n"`
	WidthBits   int                  `json:"width_bits"`
	Threads     int                  `json:"threads"`
	ElapsedNs   int64                `json:"elapsed_ns"`
	MTuplesPerS float64              `json:"mtuples_per_s"`
	MinPart     int                  `json:"min_part"`
	MaxPart     int                  `json:"max_part"`
	NonEmpty    int                  `json:"non_empty"`
	Counters    partsort.ObsCounters `json:"counters"`
}

func run[K kv.Key](n, fanout int, fnName, variant, dist string, theta float64, threads int, seed uint64, stats, jsonOut bool) {
	var keys []K
	switch dist {
	case "uniform":
		keys = gen.Uniform[K](n, 0, seed)
	case "dense":
		keys = gen.Dense[K](n, seed)
	case "zipf":
		keys = gen.ZipfKeys[K](n, uint64(n), theta, seed)
	default:
		fatal("unknown distribution " + dist)
	}
	vals := partsort.RIDs[K](n)

	var fn pfunc.Func[K]
	switch fnName {
	case "radix":
		fn = pfunc.NewRadix[K](0, uint(log2(fanout)))
	case "hash":
		fn = pfunc.NewHash[K](fanout)
	case "range":
		sample := splitter.Sample(keys, 64*fanout, seed+1)
		sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
		delims := splitter.EqualDepth(sample, fanout)
		fn = partsort.NewRangeIndex(delims)
	default:
		fatal("unknown function " + fnName)
	}

	// Counter deltas for this pass: snapshot around the timed region so the
	// range-splitter sampling above is excluded.
	before := partsort.ObservedCounters()

	var hist []int
	var d time.Duration
	switch variant {
	case "nip-ic":
		dstK, dstV := make([]K, n), make([]K, n)
		hist = part.Histogram(keys, fn)
		d = timeIt(func() { part.NonInPlaceInCache(keys, vals, dstK, dstV, fnWrap[K]{fn}, hist) })
	case "ip-ic":
		hist = part.Histogram(keys, fn)
		d = timeIt(func() { part.InPlaceInCache(keys, vals, fnWrap[K]{fn}, hist) })
	case "nip-ooc":
		dstK, dstV := make([]K, n), make([]K, n)
		hist = part.Histogram(keys, fn)
		starts, _ := part.Starts(hist)
		d = timeIt(func() { part.NonInPlaceOutOfCache(keys, vals, dstK, dstV, fnWrap[K]{fn}, starts) })
	case "ip-ooc":
		hist = part.Histogram(keys, fn)
		d = timeIt(func() { part.InPlaceOutOfCache(keys, vals, fnWrap[K]{fn}, hist) })
	case "blocks":
		d = timeIt(func() {
			b := part.ToBlocksInPlaceParallel(keys, vals, fnWrap[K]{fn}, part.DefaultBlockTuples, threads)
			hist = b.Counts
		})
	case "sync":
		hist = part.Histogram(keys, fn)
		d = timeIt(func() { part.InPlaceSynchronized(keys, vals, fnWrap[K]{fn}, hist, threads) })
	case "parallel":
		dstK, dstV := make([]K, n), make([]K, n)
		d = timeIt(func() { hist = part.ParallelNonInPlace(keys, vals, dstK, dstV, fnWrap[K]{fn}, threads) })
	default:
		fatal("unknown variant " + variant)
	}

	cs := partsort.ObservedCounters().Sub(before)

	minB, maxB, nonEmpty := n, 0, 0
	for _, h := range hist {
		if h > 0 {
			nonEmpty++
		}
		minB, maxB = min(minB, h), max(maxB, h)
	}
	rate := 0.0
	if d > 0 && n > 0 {
		rate = float64(n) / d.Seconds() / 1e6
	}

	if jsonOut {
		res := partResult{
			Variant:     variant,
			Fn:          fnName,
			Fanout:      len(hist),
			N:           n,
			WidthBits:   kv.Width[K](),
			Threads:     threads,
			ElapsedNs:   d.Nanoseconds(),
			MTuplesPerS: rate,
			MinPart:     minB,
			MaxPart:     maxB,
			NonEmpty:    nonEmpty,
			Counters:    cs,
		}
		if err := json.NewEncoder(os.Stdout).Encode(res); err != nil {
			fatal(err.Error())
		}
		return
	}

	fmt.Printf("%s/%s %d-way over %d %d-bit tuples: %.2f ms (%.1f Mtuples/s)\n",
		variant, fnName, len(hist), n, kv.Width[K](),
		float64(d.Microseconds())/1000, rate)
	mean := 0
	if len(hist) > 0 {
		mean = n / len(hist)
	}
	fmt.Printf("balance: min %d / mean %d / max %d tuples, %d/%d partitions non-empty\n",
		minB, mean, maxB, nonEmpty, len(hist))
	if stats {
		fmt.Printf("counters: tuples %d  flushes %d  swap-cycles %d  sync-claims %d  parks %d  remote %d B  samples %d\n",
			cs.TuplesPartitioned, cs.BufferFlushes, cs.SwapCycles, cs.SyncClaims,
			cs.SyncParks, cs.RemoteBytes, cs.SplitterSamples)
	}
}

// fnWrap fixes the concrete type for the generic kernels when fn is held
// as an interface.
type fnWrap[K kv.Key] struct{ f pfunc.Func[K] }

func (w fnWrap[K]) Partition(k K) int { return w.f.Partition(k) }
func (w fnWrap[K]) Fanout() int       { return w.f.Fanout() }

func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

func log2(p int) int {
	l := 0
	for 1<<l < p {
		l++
	}
	if 1<<l != p {
		fatal("fanout must be a power of two for radix/hash")
	}
	return l
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "partcli:", msg)
	os.Exit(1)
}
