// Command faultcheck drives the fault-injection harness end to end and is
// the CI gate behind verify.sh's hardened-execution smoke, mirroring
// tracecheck for observability: exit 0 means every registered injection
// site, armed against every sort that reaches it, surfaced as a typed
// *InternalError (never a crash), left the input a permutation, and leaked
// no goroutines — and that a short context deadline cancels a large sort
// promptly.
//
// Examples:
//
//	faultcheck                    # full matrix at the default size
//	faultcheck -n 100000 -v       # larger input, per-cell progress
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	partsort "repro"
	"repro/internal/fault"
	"repro/internal/gen"
)

type cell struct {
	algo    string
	site    fault.Site
	regions int
	cache   int // CacheTuples override (CMP must exceed the cache-resident cutoff)
}

// matrix pairs every registered injection site with a sort configuration
// that reaches it; faultcheck fails if a site never fires, so the matrix
// cannot silently go stale when sites move.
var matrix = []cell{
	{"lsb", fault.SiteLSBPass, 1, 0},
	{"lsb", fault.SiteWorkerStart, 1, 0},
	{"lsb", fault.SiteShuffleStart, 2, 0},
	{"msb", fault.SiteMSBRecurse, 1, 0},
	{"msb", fault.SiteWorkerStart, 1, 0},
	{"msb", fault.SiteBlockPermute, 1, 0},
	{"msb", fault.SiteBlockCleanup, 1, 0},
	{"msb", fault.SiteBlockRefill, 2, 0},
	{"msb", fault.SiteShuffleStart, 2, 0},
	{"cmp", fault.SiteCMPPass, 1, 1 << 12},
	{"cmp", fault.SiteWorkerStart, 1, 1 << 12},
	{"cmp", fault.SiteBlockPermute, 1, 1 << 12},
	{"cmp", fault.SiteBlockCleanup, 1, 1 << 12},
	{"cmp", fault.SiteShuffleStart, 2, 1 << 12},
	{"ext", fault.SiteExtSpill, 1, 0},
	{"ext", fault.SiteExtMerge, 1, 0},
}

func runSort(algo string, ctx context.Context, keys, vals []uint32, opt *partsort.SortOptions) error {
	switch algo {
	case "lsb":
		return partsort.TrySortLSBCtx(ctx, keys, vals, opt)
	case "msb":
		return partsort.TrySortMSBCtx(ctx, keys, vals, opt)
	case "cmp":
		return partsort.TrySortCmpCtx(ctx, keys, vals, opt)
	case "ext":
		_, err := partsort.SortExternalCtx(ctx, keys, vals, opt)
		return err
	}
	panic("unknown algo " + algo)
}

func main() {
	n := flag.Int("n", 1<<16, "tuples per injection run")
	threads := flag.Int("threads", 4, "worker threads")
	verbose := flag.Bool("v", false, "print one line per matrix cell")
	flag.Parse()
	defer fault.Disable()

	keys := gen.Uniform[uint32](*n, 0, 42)
	vals := partsort.RIDs[uint32](*n)
	work := make([]uint32, *n)
	workV := make([]uint32, *n)

	spillDir, err := os.MkdirTemp("", "faultcheck-ext-")
	if err != nil {
		fail("spill dir: %v", err)
	}
	defer os.RemoveAll(spillDir)

	covered := map[fault.Site]bool{}
	for _, c := range matrix {
		copy(work, keys)
		copy(workV, vals)
		base := runtime.NumGoroutine()
		opt := &partsort.SortOptions{Threads: *threads, Regions: c.regions, CacheTuples: c.cache}
		if c.algo == "ext" {
			// Forced-spill shape: segments far below n so the run leaves
			// RAM, a real fanout, and merges deep enough to probe.
			opt.TempDir = spillDir
			opt.SpillSegmentTuples = 1 << 12
			opt.SpillBucketBits = 3
			opt.SpillMergeWidth = 4
		}
		fault.Enable(c.site, 0)
		err := runSort(c.algo, context.Background(), work, workV, opt)
		fired := fault.Fired()
		fault.Disable()

		name := fmt.Sprintf("%s @ %s (regions=%d)", c.algo, c.site, c.regions)
		if !fired {
			fail("%s: site never reached — the matrix is stale", name)
		}
		var ie *partsort.InternalError
		if !errors.As(err, &ie) {
			fail("%s: err = %v (%T), want *partsort.InternalError", name, err, err)
		}
		if !errors.Is(err, fault.Injected{Site: c.site}) {
			fail("%s: InternalError does not wrap the injected fault: %v", name, ie.Value)
		}
		if len(ie.Stack) == 0 {
			fail("%s: no worker stack captured", name)
		}
		if !partsort.SameMultiset(keys, vals, work, workV) {
			fail("%s: keys/vals are not a permutation of the input after containment", name)
		}
		if err := fault.CheckResources(); err != nil {
			fail("%s: resource ledger not drained after containment: %v", name, err)
		}
		if c.algo == "ext" {
			if ents, err := os.ReadDir(spillDir); err != nil || len(ents) != 0 {
				fail("%s: spill dir not cleaned after containment: %d entries (%v)", name, len(ents), err)
			}
		}
		waitGoroutines(name, base)
		covered[c.site] = true
		if *verbose {
			fmt.Printf("faultcheck: %-40s contained, permutation intact\n", name)
		}
	}
	for _, s := range fault.Sites() {
		if !covered[s] {
			fail("site %s has no matrix cell", s)
		}
	}

	// Cancellation smoke: a deadline that expires mid-sort must surface as
	// the context error, promptly, with the input still a permutation.
	big := gen.Uniform[uint32](1<<22, 0, 7)
	bigV := partsort.RIDs[uint32](len(big))
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = partsort.TrySortLSBCtx(ctx, big, bigV, &partsort.SortOptions{Threads: *threads})
	elapsed := time.Since(start)
	if err == nil {
		fmt.Println("faultcheck: sort outran the 2ms deadline; cancellation latency not measured")
	} else {
		if !errors.Is(err, context.DeadlineExceeded) {
			fail("cancellation: err = %v, want context.DeadlineExceeded", err)
		}
		if elapsed > 5*time.Second {
			fail("cancellation took %v: checkpoints are not being polled", elapsed)
		}
		fmt.Printf("faultcheck: cancellation surfaced in %v\n", elapsed.Round(time.Millisecond))
	}

	fmt.Printf("faultcheck: %d matrix cells ok, all %d sites covered\n", len(matrix), len(fault.Sites()))
}

// waitGoroutines waits briefly for exited workers to be reaped before
// declaring a leak.
func waitGoroutines(name string, base int) {
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			fail("%s: goroutine leak: %d live, baseline %d", name, runtime.NumGoroutine(), base)
		}
		time.Sleep(time.Millisecond)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "faultcheck: "+format+"\n", args...)
	os.Exit(1)
}
