// Command extsortcheck drives the external (disk-spilling) sort end to
// end and is the CI gate behind verify.sh's extsort smoke lane,
// mirroring faultcheck for hardened execution: exit 0 means a forced
// spill on an input several times the memory budget produced a sorted
// permutation of the input, run formation wrote exactly one streaming
// copy, every temp file was removed, no file descriptors or goroutines
// leaked, and an injected fault in each extsort site was contained with
// the spill directory cleaned behind it. It also prints the merge
// pipeline's prefetch-effectiveness (OverlapRatio) so the lane's
// benchjson gate has an eyeball companion.
//
// Examples:
//
//	extsortcheck                      # defaults: 1<<18 tuples, os temp
//	extsortcheck -n 1000000 -v        # bigger input, per-lane progress
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	partsort "repro"
	"repro/internal/fault"
	"repro/internal/gen"
)

func main() {
	n := flag.Int("n", 1<<18, "tuples per lane")
	tmpRoot := flag.String("tmpdir", "", "parent for the spill directory (empty: os.TempDir)")
	threads := flag.Int("threads", 2, "worker threads")
	verbose := flag.Bool("v", false, "print one line per lane")
	flag.Parse()
	defer fault.Disable()

	spillDir, err := os.MkdirTemp(*tmpRoot, "extsortcheck-")
	if err != nil {
		fail("spill dir: %v", err)
	}
	defer os.RemoveAll(spillDir)

	// Forced-spill shape: segments far below n so the run must leave RAM,
	// a real formation fanout, and merges deep enough to exercise the
	// pipeline. SpillSegmentTuples 1<<12 over n = 1<<18 gives 64+
	// segments through a 4-way merge.
	opt := func() *partsort.SortOptions {
		return &partsort.SortOptions{
			Threads:            *threads,
			TempDir:            spillDir,
			SpillSegmentTuples: 1 << 12,
			SpillBucketBits:    3,
			SpillMergeWidth:    4,
		}
	}

	keys := gen.Uniform[uint32](*n, 0, 42)
	vals := make([]uint32, *n)
	for i := range vals {
		vals[i] = keys[i] ^ 0x5bd1e995
	}
	work := make([]uint32, *n)
	workV := make([]uint32, *n)

	baseGoroutines := runtime.NumGoroutine()

	// Lane 1: forced-spill correctness plus the single-streaming-pass and
	// cleanup witnesses.
	copy(work, keys)
	copy(workV, vals)
	start := time.Now()
	st, err := partsort.SortExternal(work, workV, opt())
	if err != nil {
		fail("correctness: %v", err)
	}
	if !st.Spilled {
		fail("correctness: input of %d tuples at segment 4096 did not spill", *n)
	}
	for i := 1; i < len(work); i++ {
		if work[i-1] > work[i] {
			fail("correctness: keys[%d]=%d > keys[%d]=%d", i-1, work[i-1], i, work[i])
		}
	}
	if !partsort.SameMultiset(keys, vals, work, workV) {
		fail("correctness: output is not a permutation of the input")
	}
	for i, k := range work {
		if workV[i] != k^0x5bd1e995 {
			fail("correctness: value at %d detached from its key", i)
		}
	}
	if wantB := int64(*n) * 8; st.FormationBytes != wantB {
		fail("formation wrote %d bytes, want exactly one streaming pass = %d", st.FormationBytes, wantB)
	}
	assertClean(spillDir, "correctness")
	if *verbose {
		fmt.Printf("extsortcheck: correctness      %d tuples in %v, %d runs, %d merge rounds, overlap %.2f\n",
			*n, time.Since(start).Round(time.Millisecond), st.RunsWritten, st.MergeRounds, st.OverlapRatio())
	}
	overlap := st.OverlapRatio()

	// The fd baseline is taken after the first lane: the runtime's
	// netpoller (epoll + eventfd) is created lazily on first file I/O and
	// those two descriptors live for the rest of the process.
	baseFDs := countFDs()

	// Lane 2: cancellation — a deadline expiring mid-spill must unwind to
	// a permutation with the temp files gone.
	copy(work, keys)
	copy(workV, vals)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	_, err = partsort.SortExternalCtx(ctx, work, workV, opt())
	cancel()
	if err == nil {
		fmt.Println("extsortcheck: sort outran the 1ms deadline; cancellation lane skipped")
	} else {
		if !errors.Is(err, context.DeadlineExceeded) {
			fail("cancellation: err = %v, want context.DeadlineExceeded", err)
		}
		if !partsort.SameMultiset(keys, vals, work, workV) {
			fail("cancellation: input not restored to a permutation")
		}
		assertClean(spillDir, "cancellation")
		if *verbose {
			fmt.Println("extsortcheck: cancellation     unwound to a permutation, spill dir clean")
		}
	}

	// Lane 3: fault containment — an injected crash in each extsort site
	// must surface as *InternalError, leave a permutation, drain the
	// resource ledger, and remove every temp file.
	for _, site := range []fault.Site{fault.SiteExtSpill, fault.SiteExtMerge} {
		copy(work, keys)
		copy(workV, vals)
		fault.Enable(site, 0)
		_, err = partsort.SortExternal(work, workV, opt())
		fired := fault.Fired()
		fault.Disable()
		if !fired {
			fail("fault %s: site never reached", site)
		}
		var ie *partsort.InternalError
		if !errors.As(err, &ie) {
			fail("fault %s: err = %v (%T), want *partsort.InternalError", site, err, err)
		}
		if !partsort.SameMultiset(keys, vals, work, workV) {
			fail("fault %s: input not restored to a permutation", site)
		}
		if err := fault.CheckResources(); err != nil {
			fail("fault %s: resource ledger not drained: %v", site, err)
		}
		assertClean(spillDir, "fault "+string(site))
		if *verbose {
			fmt.Printf("extsortcheck: fault %-12s contained, spill dir clean\n", site)
		}
	}

	// Lane 4: process hygiene — after every lane, the fd table and
	// goroutine count are back at baseline.
	if fds := countFDs(); baseFDs > 0 && fds > baseFDs {
		fail("fd leak: %d open, baseline %d", fds, baseFDs)
	}
	waitGoroutines(baseGoroutines)

	fmt.Printf("extsortcheck: all lanes ok (n=%d, overlap %.2f)\n", *n, overlap)
}

// assertClean fails unless the spill directory is empty.
func assertClean(dir, lane string) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		fail("%s: read spill dir: %v", lane, err)
	}
	if len(ents) != 0 {
		fail("%s: spill dir not cleaned: %d entries remain", lane, len(ents))
	}
}

// countFDs returns the open file-descriptor count via /proc, or 0 when
// the platform has no procfs (the check is then skipped).
func countFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return 0
	}
	return len(ents)
}

// waitGoroutines waits briefly for exited workers to be reaped before
// declaring a leak.
func waitGoroutines(base int) {
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			fail("goroutine leak: %d live, baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(time.Millisecond)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "extsortcheck: "+format+"\n", args...)
	os.Exit(1)
}
