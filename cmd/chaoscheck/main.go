// Command chaoscheck drives the seeded chaos engine against the
// resilient supervisor and is the CI gate behind verify.sh's resilience
// smoke: exit 0 means every chaos schedule in a {LSB, MSB, CMP} ×
// {workspace, none} matrix of seeded runs ended in a supervised success
// or a cleanly classified typed error (never a crash), left the columns
// a permutation of the input, leaked no goroutines and no workspace
// bytes, and that chaos decisions reproduce: single-threaded lanes
// replay byte-identical event logs from the same seed, parallel lanes
// verify every logged event against the schedule's pure decision
// function. A dedicated pressure lane proves the memory-degradation
// path: an auxiliary budget too small for LSB's tmp columns must surface
// as *ResourceError under NoFallback and degrade to an in-place success
// under the full fallback chain.
//
// Examples:
//
//	chaoscheck                      # 240 schedules at the default size
//	chaoscheck -schedules 600 -v    # bigger sweep, per-run progress
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	partsort "repro"
	"repro/internal/fault"
	"repro/internal/gen"
)

// lane is one algorithm × workspace combination of the chaos matrix.
type lane struct {
	algo   partsort.Algorithm
	withWS bool
}

// sitesFor returns the injection sites a lane's sorts (including the
// supervisor's MSB fallback stage) can reach, so schedules arm sites
// that actually fire.
func sitesFor(algo partsort.Algorithm) []fault.Site {
	switch algo {
	case partsort.LSB:
		return []fault.Site{fault.SiteLSBPass, fault.SiteWorkerStart, fault.SiteMSBRecurse}
	case partsort.MSB:
		return []fault.Site{fault.SiteMSBRecurse, fault.SiteWorkerStart, fault.SiteBlockPermute}
	default:
		return []fault.Site{fault.SiteCMPPass, fault.SiteWorkerStart, fault.SiteMSBRecurse}
	}
}

// scheduleFor builds the i-th schedule of a lane: the fire probability
// and per-site budget cycle through mild, aggressive, and certain-death
// configurations so the sweep exercises clean successes, retried
// successes, fallback-chain degradations, and classified failures.
func scheduleFor(seed uint64, algo partsort.Algorithm, i int) *fault.Schedule {
	probs := []float64{0.02, 0.2, 1.0}
	cfg := map[fault.Site]fault.SiteConfig{}
	for _, s := range sitesFor(algo) {
		cfg[s] = fault.SiteConfig{
			Prob:   probs[i%len(probs)],
			Budget: 1 + i%4, // bounded chaos: the supervisor can outlast it
		}
	}
	if i%7 == 6 {
		// Every seventh schedule is unbounded certain death on one site:
		// the supervised run must fail cleanly, not hang or crash.
		cfg[sitesFor(algo)[0]] = fault.SiteConfig{Prob: 1}
	}
	return fault.NewSchedule(seed, cfg)
}

func main() {
	schedules := flag.Int("schedules", 240, "total chaos schedules across the matrix (>= 200 for the CI gate)")
	n := flag.Int("n", 1<<15, "tuples per run")
	seed := flag.Uint64("seed", 1, "base seed; every schedule derives from it")
	threads := flag.Int("threads", 4, "worker threads for the parallel lanes")
	verbose := flag.Bool("v", false, "print one line per run")
	flag.Parse()
	defer fault.Disable()

	lanes := []lane{
		{partsort.LSB, false}, {partsort.LSB, true},
		{partsort.MSB, false}, {partsort.MSB, true},
		{partsort.CMP, false}, {partsort.CMP, true},
	}
	perLane := (*schedules + len(lanes) - 1) / len(lanes)

	ref := gen.Uniform[uint64](*n, 0, 97)
	rids := partsort.RIDs[uint64](*n)
	keys := make([]uint64, *n)
	vals := make([]uint64, *n)

	var succeeded, retried, failed int
	for li, ln := range lanes {
		var w *partsort.Workspace
		if ln.withWS {
			w = partsort.NewWorkspace()
			// Prime the pool so parked workers join the goroutine baseline.
			copy(keys, ref)
			copy(vals, rids)
			if err := partsort.TrySortLSB(keys, vals, &partsort.SortOptions{Threads: *threads, Workspace: w}); err != nil {
				fail("lane %v: workspace warm-up failed: %v", ln.algo, err)
			}
		}
		for i := 0; i < perLane; i++ {
			runSeed := *seed + uint64(li)*1_000_003 + uint64(i)
			deterministic := i%2 == 0 // odd runs go parallel
			thr := 1
			if !deterministic {
				thr = *threads
			}
			name := fmt.Sprintf("%v ws=%v seed=%d threads=%d", ln.algo, ln.withWS, runSeed, thr)

			log1 := chaosRun(name, ln, runSeed, i, thr, ref, rids, keys, vals, w,
				&succeeded, &retried, &failed)
			if deterministic {
				// Same seed, fresh schedule, single-threaded: the event log
				// must replay byte-identically.
				var s2, r2, f2 int
				log2 := chaosRun(name+" (replay)", ln, runSeed, i, thr, ref, rids, keys, vals, w,
					&s2, &r2, &f2)
				if len(log1) != len(log2) {
					fail("%s: replay produced %d events, first run %d", name, len(log2), len(log1))
				}
				for j := range log1 {
					if log1[j] != log2[j] {
						fail("%s: replay diverged at event %d: %+v vs %+v", name, j, log1[j], log2[j])
					}
				}
			}
			if *verbose {
				fmt.Printf("chaoscheck: %-48s ok (%d fires)\n", name, len(log1))
			}
		}
		if w != nil {
			w.Close()
		}
	}

	pressureLane(*n, *threads)

	total := perLane * len(lanes)
	fmt.Printf("chaoscheck: %d schedules ok (%d clean, %d retried into success, %d cleanly failed), pressure lane ok\n",
		total, succeeded, retried, failed)
	if *schedules >= 200 && total < 200 {
		fail("only %d schedules ran; the CI gate needs at least 200", total)
	}
}

// chaosRun executes one supervised sort under one chaos schedule and
// enforces every invariant; it returns the schedule's event log.
func chaosRun(name string, ln lane, runSeed uint64, i, threads int, ref, rids, keys, vals []uint64,
	w *partsort.Workspace, succeeded, retried, failed *int) []fault.Event {
	copy(keys, ref)
	copy(vals, rids)
	base := runtime.NumGoroutine()

	sched := scheduleFor(runSeed, ln.algo, i)
	fault.Arm(sched)
	var st partsort.RetryStats
	pol := &partsort.RetryPolicy{
		InitialBackoff: 50 * time.Microsecond,
		MaxBackoff:     200 * time.Microsecond,
		JitterSeed:     runSeed,
		Stats:          &st,
	}
	err := partsort.SortResilient(ln.algo, keys, vals,
		&partsort.SortOptions{Threads: threads, Workspace: w}, pol)
	fault.Disable()

	switch {
	case err == nil && st.Attempts == 1:
		*succeeded++
	case err == nil:
		*retried++
	default:
		// A failure is acceptable only when it is cleanly classified: a
		// contained panic or a budget error, never a crash or a foreign type.
		var ie *partsort.InternalError
		var re *partsort.ResourceError
		if !errors.As(err, &ie) && !errors.As(err, &re) {
			fail("%s: unclassified error %v (%T)", name, err, err)
		}
		*failed++
	}
	if err == nil && !sorted(keys) {
		fail("%s: supervised success left keys unsorted", name)
	}
	if !partsort.SameMultiset(ref, rids, keys, vals) {
		fail("%s: keys/vals are not a permutation of the input (err=%v)", name, err)
	}
	waitGoroutines(name, base)
	if w != nil {
		if b := w.AuxBytes(); b != 0 {
			fail("%s: %d workspace bytes leaked after the run", name, b)
		}
	}

	// Every logged event — whatever the interleaving — must agree with
	// the schedule's pure decision function.
	log := sched.Events()
	for _, ev := range log {
		if !sched.WouldFire(ev.Site, ev.Hit) {
			fail("%s: logged event %+v contradicts the decision function", name, ev)
		}
	}
	return log
}

// pressureLane proves the memory-degradation path end to end: a budget
// far below LSB's tmp-column footprint must fail typed under NoFallback
// and degrade into an in-place stage-2 success under the full chain.
func pressureLane(n, threads int) {
	ref := gen.Uniform[uint64](n, 0, 101)
	keys := append([]uint64(nil), ref...)
	vals := partsort.RIDs[uint64](n)
	tiny := int64(n) // bytes: orders of magnitude below the 16n tmp columns

	err := partsort.TrySortLSB(keys, vals, &partsort.SortOptions{Threads: threads, MaxAuxBytes: tiny})
	var re *partsort.ResourceError
	if !errors.As(err, &re) {
		fail("pressure: TrySortLSB err = %v (%T), want *partsort.ResourceError", err, err)
	}
	if re.Budget != tiny {
		fail("pressure: ResourceError budget = %d, want %d", re.Budget, tiny)
	}

	var st partsort.RetryStats
	err = partsort.SortResilient(partsort.LSB, keys, vals,
		&partsort.SortOptions{Threads: threads, MaxAuxBytes: tiny},
		&partsort.RetryPolicy{InitialBackoff: 50 * time.Microsecond, Stats: &st})
	if err != nil {
		fail("pressure: supervised sort failed: %v", err)
	}
	if !st.Degraded || st.Stage != 2 {
		fail("pressure: stats = %+v, want a degraded stage-2 success", st)
	}
	if !sorted(keys) || !partsort.SameMultiset(ref, partsort.RIDs[uint64](n), keys, vals) {
		fail("pressure: degraded sort did not produce a sorted permutation")
	}
	fmt.Printf("chaoscheck: pressure lane degraded %v -> in-place success (%d attempts)\n",
		partsort.LSB, st.Attempts)
}

// sorted reports keys in non-decreasing order.
func sorted(keys []uint64) bool {
	for i := 1; i < len(keys); i++ {
		if keys[i-1] > keys[i] {
			return false
		}
	}
	return true
}

// waitGoroutines waits briefly for exited workers to be reaped before
// declaring a leak.
func waitGoroutines(name string, base int) {
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			fail("%s: goroutine leak: %d live, baseline %d", name, runtime.NumGoroutine(), base)
		}
		time.Sleep(time.Millisecond)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "chaoscheck: "+format+"\n", args...)
	os.Exit(1)
}
