// Command figures regenerates the paper's evaluation figures as text
// tables: measured series from this repository's implementation at
// laptop scale, and modeled series for the paper's 4-socket platform.
//
// Usage:
//
//	figures                 # all figures, default scale
//	figures -fig 3          # one figure (3..15, skew, crossings)
//	figures -quick          # ~8x smaller measured workloads
//	figures -tuples 4194304 # measured workload size
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/figures"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate (e.g. 3, fig3, skew, crossings); empty = all")
	quick := flag.Bool("quick", false, "shrink measured workloads ~8x")
	tuples := flag.Int("tuples", 0, "measured workload size in tuples (default 1M)")
	threads := flag.Int("threads", 0, "measured worker goroutines (default 4)")
	regions := flag.Int("regions", 0, "simulated NUMA regions (default 4)")
	list := flag.Bool("list", false, "list available figures")
	flag.Parse()

	cfg := figures.Config{
		PartTuples: *tuples,
		SortTuples: *tuples,
		Threads:    *threads,
		Regions:    *regions,
		Quick:      *quick,
	}

	if *list {
		for _, g := range figures.All() {
			fmt.Printf("%-10s %s\n", g.ID, g.Name)
		}
		return
	}

	if *fig != "" {
		g := figures.ByID(*fig)
		if g == nil && !strings.HasPrefix(*fig, "fig") {
			g = figures.ByID("fig" + *fig)
		}
		if g == nil {
			fmt.Fprintf(os.Stderr, "unknown figure %q; use -list\n", *fig)
			os.Exit(1)
		}
		g.Run(cfg).Render(os.Stdout)
		return
	}
	for _, g := range figures.All() {
		g.Run(cfg).Render(os.Stdout)
	}
}
