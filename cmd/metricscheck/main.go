// Command metricscheck is the CI gate for the live-telemetry layer: it
// starts an observability session with the metrics sink and profile
// labels enabled, runs sorts in the background, scrapes the HTTP
// endpoint mid-sort, and fails on Prometheus text-format violations,
// missing metric families, histogram inconsistencies, unlabeled
// profiles, allocating record paths, or goroutines leaked by server
// shutdown. Exit 0 means the telemetry contract holds end to end.
//
// Usage:
//
//	metricscheck [-n tuples] [-threads k]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	partsort "repro"
	"repro/internal/gen"
	"repro/internal/obs"
)

func main() {
	n := flag.Int("n", 1<<20, "tuples per background sort")
	threads := flag.Int("threads", 4, "sort worker goroutines")
	flag.Parse()

	// 1. Zero-allocation record paths, disabled session first.
	if a := testing.AllocsPerRun(1000, func() {
		sp := obs.BeginIn("lsb", "local", "phase", -1)
		sp.End()
	}); a != 0 {
		fail(fmt.Sprintf("disabled span hook allocates %v/op, want 0", a))
	}

	// 2. Enabled session with the metrics sink and profile labels.
	partsort.StartObservability(partsort.NewMetricsSink(nil))
	partsort.EnableProfileLabels(true)
	defer func() { _ = partsort.StopObservability() }()

	sp := obs.BeginIn("lsb", "local", "phase", -1) // warm the series
	sp.End()
	if a := testing.AllocsPerRun(1000, func() {
		sp := obs.BeginIn("lsb", "local", "phase", -1)
		sp.EndN(64)
	}); a != 0 {
		fail(fmt.Sprintf("enabled histogram record path allocates %v/op, want 0", a))
	}

	goroutinesBefore := runtime.NumGoroutine()
	srv, err := partsort.ServeMetrics("127.0.0.1:0")
	if err != nil {
		fail("metrics endpoint: " + err.Error())
	}

	// 3. Background sort loop so scrapes observe a live workload.
	stop := make(chan struct{})
	sortDone := make(chan struct{})
	go func() {
		defer close(sortDone)
		keys := gen.Uniform[uint32](*n, 0, 42)
		vals := partsort.RIDs[uint32](*n)
		work := make([]uint32, *n)
		wvals := make([]uint32, *n)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			copy(work, keys)
			copy(wvals, vals)
			algo := []string{"lsb", "msb", "cmp"}[i%3]
			opt := &partsort.SortOptions{Threads: *threads}
			switch algo {
			case "lsb":
				partsort.SortLSB(work, wvals, opt)
			case "msb":
				partsort.SortMSB(work, wvals, opt)
			case "cmp":
				partsort.SortCMP(work, wvals, opt)
			}
		}
	}()

	// Let at least one sort of each algorithm land in the registry.
	time.Sleep(300 * time.Millisecond)

	// 4. Scrape and validate the Prometheus exposition mid-sort.
	body := get(srv.URL() + "/metrics")
	fams := parseProm(body)
	for _, want := range []string{
		"partsort_events_total",
		"partsort_workspace_hit_ratio",
		"partsort_aux_bytes",
		"partsort_phase_duration_seconds",
		"partsort_pass_duration_seconds",
		"partsort_sort_duration_seconds",
		"partsort_goroutines",
		"partsort_heap_alloc_bytes",
		"partsort_gc_cycles_total",
		"partsort_retry_attempts_total",
	} {
		if _, ok := fams[want]; !ok {
			fail("scrape missing family " + want + "\n" + names(fams))
		}
	}
	if !strings.Contains(body, `partsort_events_total{event="tuples_partitioned"}`) {
		fail("partsort_events_total lacks the tuples_partitioned series")
	}
	for _, outcome := range []string{"retry", "fallback", "degrade"} {
		if !strings.Contains(body, `partsort_retry_attempts_total{outcome="`+outcome+`"}`) {
			fail("partsort_retry_attempts_total lacks the " + outcome + " series")
		}
	}
	if !strings.Contains(body, `partsort_phase_duration_seconds_count{algo="lsb"`) {
		fail("phase histograms lack the algo label")
	}
	checkHistograms(body)

	// 5. expvar view must be valid JSON carrying the partsort export.
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(get(srv.URL()+"/debug/vars")), &vars); err != nil {
		fail("/debug/vars is not JSON: " + err.Error())
	}
	if _, ok := vars["partsort"]; !ok {
		fail("/debug/vars missing the partsort export")
	}

	// 6. Profile labels: the goroutine profile's label section must show
	// algo/worker labels while sorts run. Retried — labels are only
	// visible while a labeled scope is live.
	labeled := false
	for try := 0; try < 40 && !labeled; try++ {
		prof := get(srv.URL() + "/debug/pprof/goroutine?debug=1")
		labeled = strings.Contains(prof, `"algo":`) || strings.Contains(prof, "algo:")
		if !labeled {
			time.Sleep(50 * time.Millisecond)
		}
	}
	if !labeled {
		fail("goroutine profile never showed algo labels while sorting")
	}

	// 7. Graceful shutdown leaks nothing.
	close(stop)
	<-sortDone
	if err := srv.Shutdown(context.Background()); err != nil {
		fail("shutdown: " + err.Error())
	}
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > goroutinesBefore {
		fail(fmt.Sprintf("goroutines: %d before endpoint, %d after shutdown", goroutinesBefore, g))
	}

	fmt.Printf("metricscheck: ok (%d families, labeled profiles, zero-alloc record paths)\n", len(fams))
}

// get fetches a URL or fails the check.
func get(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		fail(err.Error())
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fail(err.Error())
	}
	if resp.StatusCode != http.StatusOK {
		fail(fmt.Sprintf("GET %s: HTTP %d", url, resp.StatusCode))
	}
	return string(body)
}

// parseProm validates the scrape line by line (comments, TYPE keywords,
// sample syntax, numeric values) and returns family -> TYPE.
func parseProm(body string) map[string]string {
	fams := map[string]string{}
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				fail(fmt.Sprintf("line %d: malformed TYPE comment %q", ln+1, line))
			}
			switch f[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				fail(fmt.Sprintf("line %d: unknown TYPE %q", ln+1, f[3]))
			}
			if _, dup := fams[f[2]]; dup {
				fail(fmt.Sprintf("line %d: duplicate TYPE for family %s", ln+1, f[2]))
			}
			fams[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// Sample line: name[{labels}] value
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			fail(fmt.Sprintf("line %d: malformed sample %q", ln+1, line))
		}
		if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
			fail(fmt.Sprintf("line %d: non-numeric value in %q", ln+1, line))
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				fail(fmt.Sprintf("line %d: unterminated label set in %q", ln+1, line))
			}
			name = name[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
			"_bucket"), "_sum"), "_count")
		if _, ok := fams[name]; ok {
			continue
		}
		if _, ok := fams[base]; !ok {
			fail(fmt.Sprintf("line %d: sample %q precedes its TYPE comment", ln+1, line))
		}
	}
	return fams
}

// checkHistograms verifies every histogram series: cumulative buckets
// are non-decreasing with strictly increasing le bounds, and the +Inf
// bucket equals the series' _count sample.
func checkHistograms(body string) {
	type state struct {
		lastLe  float64
		lastCum uint64
		inf     *uint64
		count   *uint64
	}
	series := map[string]*state{}
	for ln, line := range strings.Split(body, "\n") {
		if line == "" || line[0] == '#' {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		name := line[:sp]
		switch {
		case strings.Contains(name, "_bucket{"):
			le := extractLabel(name, "le")
			key := strings.Replace(stripLabel(name, "le"), "_bucket", "", 1)
			st := series[key]
			if st == nil {
				st = &state{lastLe: -1}
				series[key] = st
			}
			cum, err := strconv.ParseUint(line[sp+1:], 10, 64)
			if err != nil {
				fail(fmt.Sprintf("line %d: non-integer bucket count %q", ln+1, line))
			}
			if cum < st.lastCum {
				fail(fmt.Sprintf("line %d: cumulative bucket decreased in %q", ln+1, line))
			}
			st.lastCum = cum
			if le == "+Inf" {
				st.inf = &cum
				continue
			}
			b, err := strconv.ParseFloat(le, 64)
			if err != nil {
				fail(fmt.Sprintf("line %d: bad le %q", ln+1, le))
			}
			if b <= st.lastLe {
				fail(fmt.Sprintf("line %d: le bounds not increasing in %q", ln+1, line))
			}
			st.lastLe = b
		case strings.Contains(name, "_count"):
			key := strings.Replace(name, "_count", "", 1)
			if st := series[key]; st != nil {
				c, _ := strconv.ParseUint(line[sp+1:], 10, 64)
				st.count = &c
			}
		}
	}
	if len(series) == 0 {
		fail("scrape contains no histogram buckets")
	}
	for key, st := range series {
		if st.inf == nil {
			fail("histogram " + key + " has no +Inf bucket")
		}
		if st.count == nil {
			fail("histogram " + key + " has no _count sample")
		}
		if *st.inf != *st.count {
			fail(fmt.Sprintf("histogram %s: +Inf bucket %d != _count %d", key, *st.inf, *st.count))
		}
	}
}

// extractLabel returns the value of one label in a rendered sample name.
func extractLabel(name, key string) string {
	i := strings.Index(name, key+`="`)
	if i < 0 {
		fail("sample " + name + " lacks label " + key)
	}
	rest := name[i+len(key)+2:]
	return rest[:strings.IndexByte(rest, '"')]
}

// stripLabel removes one label pair from a rendered sample name so
// bucket lines of a series group under one key.
func stripLabel(name, key string) string {
	i := strings.Index(name, key+`="`)
	if i < 0 {
		return name
	}
	rest := name[i:]
	end := strings.IndexByte(rest[len(key)+2:], '"') + len(key) + 3
	out := name[:i] + rest[end:]
	out = strings.Replace(out, ",}", "}", 1)
	out = strings.Replace(out, "{,", "{", 1)
	out = strings.Replace(out, ",,", ",", 1)
	if strings.HasSuffix(out, "{}") {
		out = strings.TrimSuffix(out, "{}")
	}
	return out
}

// names renders the scraped family list for failure messages.
func names(fams map[string]string) string {
	out := make([]string, 0, len(fams))
	for f := range fams {
		out = append(out, f)
	}
	sort.Strings(out)
	return "families seen: " + strings.Join(out, ", ")
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "metricscheck:", msg)
	os.Exit(1)
}
