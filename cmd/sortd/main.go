// Command sortd is the sort daemon: the partsort library served as a
// long-running multi-tenant service. It exposes the HTTP/JSON API
// (POST /v1/sort, GET /healthz, GET /v1/stats) on -addr, an optional
// length-prefixed raw-TCP API on -tcp-addr, and the live telemetry
// endpoint (Prometheus /metrics, expvar, pprof) on -metrics-addr.
// Requests pass admission control (queue depth, the auxiliary-memory
// ledger, optional per-tenant caps), small key-only requests coalesce
// into merged batched runs, and every sort executes under the
// SortResilient retry/fallback supervisor on pooled per-size-class
// workspace arenas. With -spill-dir set, requests too large for the
// memory ledger degrade onto the external disk-spilling sort (bounded by
// the -max-spill-bytes disk ledger) instead of being rejected; without
// it they answer 413 with a structured reason.
//
// SIGTERM or SIGINT starts a graceful drain: admission flips to
// rejecting (503 + Retry-After, /healthz reports "draining"), queued
// work finishes, and once -drain-timeout expires any still-running sorts
// are cancelled through their Try*Ctx rollback.
//
// Exit codes: 0 clean drain, 1 runtime failure, 2 bad flags, 3 drain
// deadline forced cancellation. See OPERATIONS.md for the full operator
// runbook.
//
// Example:
//
//	sortd -addr :8070 -metrics-addr :9090 -queue-depth 512 -workers 4
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	partsort "repro"
	"repro/internal/server"
)

func main() {
	os.Exit(run())
}

// run is main behind an exit code.
func run() int {
	var (
		addr         = flag.String("addr", ":8070", "HTTP API listen address")
		tcpAddr      = flag.String("tcp-addr", "", "raw-TCP API listen address (empty: disabled)")
		metricsAddr  = flag.String("metrics-addr", "", "live telemetry endpoint address (empty: disabled)")
		queueDepth   = flag.Int("queue-depth", 256, "admitted-but-unfinished request bound")
		workers      = flag.Int("workers", 0, "executor goroutines (0: GOMAXPROCS)")
		sortThreads  = flag.Int("sort-threads", 1, "worker threads per individual sort")
		maxAux       = flag.Int64("max-aux", 0, "admission ledger budget in bytes (0: half of available memory)")
		maxTuples    = flag.Int("max-tuples", 0, "per-request key-count cap (0: default 1<<26)")
		spillDir     = flag.String("spill-dir", "", "spill directory for over-budget requests (empty: reject them with 413)")
		maxSpill     = flag.Int64("max-spill-bytes", 0, "disk ledger shared by spilling requests in bytes (0: unlimited)")
		spillSegment = flag.Int("spill-segment", 0, "external-sort segment tuples override (0: planned)")
		tenantCap    = flag.Int("tenant-cap", 0, "per-tenant admitted-request cap (0: uncapped)")
		batchMax     = flag.Int("batch-max", 4096, "coalesce key-only requests up to this many keys (negative: disable)")
		batchWindow  = flag.Duration("batch-window", 2*time.Millisecond, "coalescing window")
		autotune     = flag.Bool("autotune", false, "engage the machine-calibrated planner per sort")
		profilePath  = flag.String("profile", "", "machine profile JSON to load (see tunecli; empty: lazy quick calibration)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful drain budget before force-cancelling running sorts")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "sortd: unexpected arguments:", flag.Args())
		return 2
	}

	if *profilePath != "" {
		if _, err := partsort.LoadMachineProfile(*profilePath); err != nil {
			fmt.Fprintln(os.Stderr, "sortd: load profile:", err)
			return 2
		}
		fmt.Fprintln(os.Stderr, "sortd: machine profile loaded from", *profilePath)
	}

	// The obs session feeds the Section 3.2 event counters and the
	// per-(algo, phase) latency histograms the metrics endpoint serves.
	partsort.StartObservability(partsort.NewMetricsSink(nil))
	defer func() { _ = partsort.StopObservability() }()
	partsort.EnableProfileLabels(true)

	var metricsSrv *partsort.MetricsServer
	if *metricsAddr != "" {
		var err error
		metricsSrv, err = partsort.ServeMetrics(*metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sortd: metrics endpoint:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "sortd: serving metrics on %s/metrics\n", metricsSrv.URL())
	}

	srv := server.New(server.Config{
		QueueDepth:         *queueDepth,
		Workers:            *workers,
		SortThreads:        *sortThreads,
		MaxAuxBytes:        *maxAux,
		MaxTuples:          *maxTuples,
		SpillDir:           *spillDir,
		MaxSpillBytes:      *maxSpill,
		SpillSegmentTuples: *spillSegment,
		MaxPerTenant:       *tenantCap,
		BatchMaxTuples:     *batchMax,
		BatchWindow:        *batchWindow,
		AutoTune:           *autotune,
	})

	httpLis, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sortd: listen:", err)
		return 1
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- httpSrv.Serve(httpLis) }()
	fmt.Fprintf(os.Stderr, "sortd: serving HTTP API on %s\n", httpLis.Addr())

	var tcpLis net.Listener
	tcpErr := make(chan error, 1)
	if *tcpAddr != "" {
		tcpLis, err = net.Listen("tcp", *tcpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sortd: tcp listen:", err)
			return 1
		}
		go func() { tcpErr <- srv.ServeTCP(tcpLis) }()
		fmt.Fprintf(os.Stderr, "sortd: serving TCP API on %s\n", tcpLis.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "sortd: %s: draining (budget %s)\n", got, *drainTimeout)
	case err := <-httpErr:
		fmt.Fprintln(os.Stderr, "sortd: http serve:", err)
		return 1
	case err := <-tcpErr:
		if err != nil {
			fmt.Fprintln(os.Stderr, "sortd: tcp serve:", err)
			return 1
		}
	}

	// Drain order: stop intake (listeners), drain the queue under the
	// budget, then release everything else.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	_ = httpSrv.Shutdown(ctx)
	if tcpLis != nil {
		tcpLis.Close()
	}
	drainErr := srv.Drain(ctx)
	srv.CloseTCPConns()
	if metricsSrv != nil {
		_ = metricsSrv.Shutdown(context.Background())
	}
	switch {
	case drainErr == nil:
		fmt.Fprintf(os.Stderr, "sortd: drained cleanly (ledger %d B, workspace %d B)\n",
			srv.PendingAuxBytes(), srv.AuxBytes())
		return 0
	case errors.Is(drainErr, context.DeadlineExceeded):
		fmt.Fprintln(os.Stderr, "sortd: drain deadline exceeded; running sorts were cancelled")
		return 3
	default:
		fmt.Fprintln(os.Stderr, "sortd: drain:", drainErr)
		return 1
	}
}
