// Command benchdiff compares two benchmark reports recorded by cmd/benchjson
// and fails on performance regressions: the standing perf gate of verify.sh.
// For every benchmark present in both files it prints old/new ns/op and the
// delta, then the geometric-mean delta over the common set, and exits
// non-zero when any common benchmark got slower than the threshold (default
// 5%). When both reports carry allocated B/op (benchjson -benchmem), those
// are diffed too under their own threshold (default 10%) — the memory gate
// for the in-place partitioning paths.
//
// Benchmarks present only in the baseline are listed as "gone" and, under
// -require-all, make the run fail: a recording that silently dropped a
// benchmark family must not pass the gate as if nothing regressed.
// Benchmarks present only in the new file are always informational — a
// growing suite is not a regression.
//
// Examples:
//
//	benchdiff BENCH_PR4.json BENCH_PR5.json
//	benchdiff -require-all -threshold 10 -bthreshold 20 old.json new.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
)

// Result mirrors cmd/benchjson's per-benchmark record (the fields benchdiff
// reads; unknown fields are ignored).
type Result struct {
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_op"`
	BytesPerOp  *float64           `json:"b_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Report mirrors cmd/benchjson's document shape.
type Report struct {
	Command string   `json:"command,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	threshold := flag.Float64("threshold", 5, "max allowed ns/op regression in percent before failing")
	bthreshold := flag.Float64("bthreshold", 10, "max allowed B/op regression in percent before failing (benchmarks reporting B/op in both files)")
	requireAll := flag.Bool("require-all", false, "fail when a baseline benchmark is missing from the new report")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold pct] [-bthreshold pct] [-require-all] old.json new.json")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldRep, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	newRep, err := load(flag.Arg(1))
	if err != nil {
		fatal(err)
	}

	newByName := map[string]Result{}
	for _, r := range newRep.Results {
		newByName[r.Name] = r
	}

	fmt.Printf("%-44s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	var logSum float64
	common := 0
	failed := false
	var gone []string
	for _, o := range oldRep.Results {
		n, ok := newByName[o.Name]
		if !ok {
			fmt.Printf("%-44s %14.0f %14s %8s\n", o.Name, o.NsPerOp, "-", "gone")
			gone = append(gone, o.Name)
			continue
		}
		if o.NsPerOp <= 0 || n.NsPerOp <= 0 {
			continue
		}
		ratio := n.NsPerOp / o.NsPerOp
		delta := (ratio - 1) * 100
		mark := ""
		if delta > *threshold {
			mark = "  REGRESSION"
			failed = true
		}
		fmt.Printf("%-44s %14.0f %14.0f %+7.1f%%%s\n", o.Name, o.NsPerOp, n.NsPerOp, delta, mark)
		logSum += math.Log(ratio)
		common++
	}
	for _, n := range newRep.Results {
		found := false
		for _, o := range oldRep.Results {
			if o.Name == n.Name {
				found = true
				break
			}
		}
		if !found {
			fmt.Printf("%-44s %14s %14.0f %8s\n", n.Name, "-", n.NsPerOp, "new")
		}
	}
	if common == 0 {
		fatal(fmt.Errorf("no common benchmarks between %s and %s", flag.Arg(0), flag.Arg(1)))
	}
	geo := (math.Exp(logSum/float64(common)) - 1) * 100
	fmt.Printf("\ngeomean delta over %d common benchmarks: %+.1f%%\n", common, geo)

	if diffBytes(oldRep, newByName, *bthreshold) {
		failed = true
	}

	if len(gone) > 0 {
		fmt.Printf("\n%d baseline benchmark(s) missing from %s:\n", len(gone), flag.Arg(1))
		for _, name := range gone {
			fmt.Printf("  %s\n", name)
		}
		if *requireAll {
			fmt.Println("benchdiff: FAIL — -require-all is set and the new report dropped baseline benchmarks")
			os.Exit(1)
		}
	}

	if failed {
		fmt.Printf("benchdiff: FAIL — at least one benchmark regressed more than the threshold\n")
		os.Exit(1)
	}
	fmt.Println("benchdiff: OK")
}

// diffBytes prints the allocated-bytes table for benchmarks carrying B/op
// in both reports and returns true when any grew past the threshold. A
// report recorded without -benchmem simply contributes no rows.
func diffBytes(oldRep *Report, newByName map[string]Result, threshold float64) bool {
	var logSum float64
	common := 0
	failed := false
	header := false
	for _, o := range oldRep.Results {
		n, ok := newByName[o.Name]
		if !ok || o.BytesPerOp == nil || n.BytesPerOp == nil {
			continue
		}
		ob, nb := *o.BytesPerOp, *n.BytesPerOp
		if ob <= 0 {
			continue
		}
		if !header {
			fmt.Printf("\n%-44s %14s %14s %8s\n", "benchmark", "old B/op", "new B/op", "delta")
			header = true
		}
		ratio := nb / ob
		delta := (ratio - 1) * 100
		mark := ""
		if delta > threshold {
			mark = "  REGRESSION"
			failed = true
		}
		fmt.Printf("%-44s %14.0f %14.0f %+7.1f%%%s\n", o.Name, ob, nb, delta, mark)
		logSum += math.Log(ratio)
		common++
	}
	if common > 0 {
		geo := (math.Exp(logSum/float64(common)) - 1) * 100
		fmt.Printf("\ngeomean B/op delta over %d common benchmarks: %+.1f%%\n", common, geo)
	}
	return failed
}

// load reads and decodes one benchjson report.
func load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Results) == 0 {
		return nil, fmt.Errorf("%s: no results", path)
	}
	return &r, nil
}

// fatal prints the error and exits non-zero.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
