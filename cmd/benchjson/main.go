// Command benchjson runs a set of Go benchmarks and emits their results as
// machine-readable JSON (ns/op, B/op, allocs/op, plus any ReportMetric
// extras such as Mtuples/s), so performance numbers can be recorded in the
// repository and diffed across changes.
//
// Examples:
//
//	benchjson                                   # the PR 2 kernels -> BENCH_PR2.json
//	benchjson -bench 'Fig10' -out fig10.json    # any benchmark family
//	benchjson -count 6 -agg min -out b.json     # noise-robust: fastest of 6
//	go test -bench X -benchmem | benchjson -stdin -out x.json
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	partsort "repro"
)

// Result is one benchmark line in parsed form.
type Result struct {
	Name        string   `json:"name"`
	Iters       int64    `json:"iters"`
	NsPerOp     float64  `json:"ns_op"`
	BytesPerOp  *float64 `json:"b_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_op,omitempty"`
	// Extra holds custom ReportMetric units (e.g. "Mtuples/s").
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the emitted document.
type Report struct {
	GoVersion string   `json:"go"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Command   string   `json:"command,omitempty"`
	Results   []Result `json:"results"`
}

func main() {
	var (
		bench = flag.String("bench", "LSBReuse|ScatterAlloc", "benchmark regexp passed to go test")
		btime = flag.String("benchtime", "10x", "benchtime passed to go test")
		count = flag.Int("count", 1, "count passed to go test")
		pkg   = flag.String("pkg", ".", "package to benchmark")
		out   = flag.String("out", "BENCH_PR2.json", "output file (- for stdout)")
		stdin = flag.Bool("stdin", false, "parse go test output from stdin instead of running go test")
		agg   = flag.String("agg", "mean", "how to merge -count repeats: mean, or min (fastest repeat; robust to scheduler noise when recording baselines)")
		mAddr = flag.String("metrics-addr", "", "serve live telemetry for the benchjson driver process on this address while the benchmarks run (Prometheus /metrics, expvar /debug/vars, pprof /debug/pprof/)")
		reqEx = flag.String("require-extra", "", "comma-separated 'key>=v' / 'key<=v' assertions on ReportMetric extras; every result carrying the key must satisfy the bound and at least one result must carry it (CI gate, e.g. overlap_ratio>=0.5)")
	)
	flag.Parse()

	if *mAddr != "" {
		srv, err := partsort.ServeMetrics(*mAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: metrics endpoint:", err)
			os.Exit(1)
		}
		srv.ShutdownOnSignal(os.Interrupt, syscall.SIGTERM)
		fmt.Fprintf(os.Stderr, "benchjson: serving live metrics on %s/metrics\n", srv.URL())
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		}()
	}

	rep := Report{GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}

	var src io.Reader
	if *stdin {
		src = os.Stdin
	} else {
		args := []string{"test", "-run", "xxx", "-bench", *bench, "-benchmem",
			"-benchtime", *btime, "-count", strconv.Itoa(*count), *pkg}
		rep.Command = "go " + strings.Join(args, " ")
		cmd := exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		raw, err := cmd.Output()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n%s", err, raw)
			os.Exit(1)
		}
		src = strings.NewReader(string(raw))
	}

	results, err := parse(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found")
		os.Exit(1)
	}
	switch *agg {
	case "mean":
		rep.Results = merge(results)
	case "min":
		rep.Results = mergeMin(results)
	default:
		fmt.Fprintf(os.Stderr, "benchjson: unknown -agg %q (want mean or min)\n", *agg)
		os.Exit(1)
	}

	if *reqEx != "" {
		if err := checkExtras(rep.Results, *reqEx); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d results to %s\n", len(rep.Results), *out)
}

// parse extracts benchmark result lines ("BenchmarkX-8  N  v unit  v unit ...")
// from go test output.
func parse(r io.Reader) ([]Result, error) {
	var results []Result
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: trimProcSuffix(fields[0]), Iters: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				b := v
				res.BytesPerOp = &b
			case "allocs/op":
				a := v
				res.AllocsPerOp = &a
			default:
				if res.Extra == nil {
					res.Extra = map[string]float64{}
				}
				res.Extra[unit] = v
			}
		}
		results = append(results, res)
	}
	return results, sc.Err()
}

// checkExtras enforces the -require-extra assertions against the merged
// results. Each clause is "key>=value" or "key<=value"; a result without
// the key is skipped, but a clause no result carries fails — a vanished
// metric must not silently pass the gate.
func checkExtras(results []Result, spec string) error {
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		op := ">="
		i := strings.Index(clause, op)
		if i < 0 {
			op = "<="
			i = strings.Index(clause, op)
		}
		if i <= 0 {
			return fmt.Errorf("bad -require-extra clause %q (want key>=value or key<=value)", clause)
		}
		key := strings.TrimSpace(clause[:i])
		bound, err := strconv.ParseFloat(strings.TrimSpace(clause[i+len(op):]), 64)
		if err != nil {
			return fmt.Errorf("bad -require-extra bound in %q: %v", clause, err)
		}
		carried := false
		for _, r := range results {
			v, ok := r.Extra[key]
			if !ok {
				continue
			}
			carried = true
			if (op == ">=" && v < bound) || (op == "<=" && v > bound) {
				return fmt.Errorf("require-extra: %s: %s = %g, want %s %g", r.Name, key, v, op, bound)
			}
		}
		if !carried {
			return fmt.Errorf("require-extra: no result reports metric %q", key)
		}
	}
	return nil
}

// trimProcSuffix strips the trailing "-N" GOMAXPROCS marker from a
// benchmark name (sub-benchmark slashes are kept).
func trimProcSuffix(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// mergeMin keeps, for each benchmark, the repeat with the lowest ns/op.
// Timing noise on a shared machine is strictly additive — the scheduler
// can only slow an iteration down — so the fastest of N repeats is the
// best estimator of true cost when recording a regression baseline.
func mergeMin(in []Result) []Result {
	var order []string
	byName := map[string]Result{}
	for _, r := range in {
		best, ok := byName[r.Name]
		if !ok {
			order = append(order, r.Name)
		}
		if !ok || r.NsPerOp < best.NsPerOp {
			byName[r.Name] = r
		}
	}
	out := make([]Result, 0, len(order))
	for _, name := range order {
		out = append(out, byName[name])
	}
	return out
}

// merge averages repeated lines of the same benchmark (from -count > 1),
// weighting each line equally.
func merge(in []Result) []Result {
	type acc struct {
		r Result
		n float64
	}
	var order []string
	byName := map[string]*acc{}
	for _, r := range in {
		a, ok := byName[r.Name]
		if !ok {
			cp := r
			if r.BytesPerOp != nil {
				b := *r.BytesPerOp
				cp.BytesPerOp = &b
			}
			if r.AllocsPerOp != nil {
				al := *r.AllocsPerOp
				cp.AllocsPerOp = &al
			}
			if r.Extra != nil {
				cp.Extra = map[string]float64{}
				for k, v := range r.Extra {
					cp.Extra[k] = v
				}
			}
			byName[r.Name] = &acc{r: cp, n: 1}
			order = append(order, r.Name)
			continue
		}
		a.n++
		a.r.Iters += r.Iters
		a.r.NsPerOp += (r.NsPerOp - a.r.NsPerOp) / a.n
		if a.r.BytesPerOp != nil && r.BytesPerOp != nil {
			*a.r.BytesPerOp += (*r.BytesPerOp - *a.r.BytesPerOp) / a.n
		}
		if a.r.AllocsPerOp != nil && r.AllocsPerOp != nil {
			*a.r.AllocsPerOp += (*r.AllocsPerOp - *a.r.AllocsPerOp) / a.n
		}
		for k, v := range r.Extra {
			if a.r.Extra == nil {
				a.r.Extra = map[string]float64{}
			}
			a.r.Extra[k] += (v - a.r.Extra[k]) / a.n
		}
	}
	out := make([]Result, 0, len(order))
	for _, name := range order {
		out = append(out, byName[name].r)
	}
	return out
}
