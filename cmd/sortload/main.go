// Command sortload is the open-loop load generator for sortd: many
// concurrent clients submit sort requests over the HTTP/JSON API and the
// tool reports latency percentiles under contention — p50/p95/p99 of the
// full submit-to-response path, which includes queue wait and admission
// retries, not just single-sort throughput.
//
// In open-loop mode (-rate > 0) arrivals are scheduled by a fixed-rate
// clock independent of response times, and each request's latency is
// measured from its scheduled arrival — so a saturated server shows up
// as growing latency (no coordinated omission). With -rate 0 the clients
// run closed-loop, each submitting as fast as responses return.
//
// Every response is verified: keys non-decreasing and the key checksum
// preserved. Admission rejections (429/503) honor Retry-After and are
// counted separately. -metrics-url scrapes the daemon's /metrics
// endpoint mid-load and fails unless the server families are present —
// the CI smoke lane's "scrape under load" check.
//
// The -out report is benchjson-schema JSON, so cmd/benchdiff can gate
// latency regressions between recordings; -append merges the results
// into an existing report (BENCH_PR9.json carries the AutoTune family
// plus these latency records).
//
// With -large-n set, roughly one request in -large-every carries that
// many keys instead of -n, exercising the daemon's over-budget spill
// degradation path; the large class is summarized and recorded
// separately (record name suffix /class=large, spilled count in Extra)
// so the standard-class record stays comparable across recordings.
//
// Example:
//
//	sortload -addr 127.0.0.1:8070 -clients 64 -duration 10s -n 4096 \
//	         -metrics-url http://127.0.0.1:9090/metrics -out load.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// sortRequest mirrors the daemon's POST /v1/sort body.
type sortRequest struct {
	Tenant   string   `json:"tenant,omitempty"`
	Algo     string   `json:"algo"`
	Priority int      `json:"priority,omitempty"`
	Width    int      `json:"width,omitempty"`
	Keys     []uint64 `json:"keys"`
}

// sortResponse is the subset of the daemon's response sortload verifies.
type sortResponse struct {
	Keys          []uint64 `json:"keys"`
	QueueNs       int64    `json:"queue_ns"`
	SortNs        int64    `json:"sort_ns"`
	Attempts      int      `json:"attempts"`
	Stage         int      `json:"stage"`
	Batched       bool     `json:"batched"`
	BatchRequests int      `json:"batch_requests"`
	Spilled       bool     `json:"spilled"`
}

// benchResult and benchReport mirror cmd/benchjson's schema so benchdiff
// can read sortload recordings.
type benchResult struct {
	Name        string             `json:"name"`
	Iters       int64              `json:"iters"`
	NsPerOp     float64            `json:"ns_op"`
	BytesPerOp  *float64           `json:"b_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// benchReport is the document form of a recording.
type benchReport struct {
	GoVersion string        `json:"go"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	Command   string        `json:"command,omitempty"`
	Results   []benchResult `json:"results"`
}

// outcome is one request's measurement.
type outcome struct {
	latency  time.Duration
	batched  bool
	rejected bool
	spilled  bool
	large    bool
	err      error
}

// serverFamilies are the metric families the mid-load scrape requires.
var serverFamilies = []string{
	"partsort_server_queue_depth",
	"partsort_server_admissions_total",
	"partsort_server_requests_total",
	"partsort_server_sort_seconds",
	"partsort_aux_bytes",
}

func main() {
	os.Exit(run())
}

// run is main behind an exit code.
func run() int {
	var (
		addr       = flag.String("addr", "127.0.0.1:8070", "sortd HTTP API address")
		clients    = flag.Int("clients", 64, "concurrent client goroutines")
		requests   = flag.Int("requests", 0, "total requests to send (0: run for -duration)")
		duration   = flag.Duration("duration", 10*time.Second, "run length when -requests is 0")
		n          = flag.Int("n", 4096, "keys per request")
		largeN     = flag.Int("large-n", 0, "keys per -large-class request (0: class disabled)")
		largeEvery = flag.Int("large-every", 16, "submit one large request per this many requests")
		width      = flag.Int("width", 64, "key width in bits (32 or 64)")
		algo       = flag.String("algo", "lsb", "algorithm: lsb, msb, or cmp")
		tenants    = flag.Int("tenants", 4, "distinct tenant ids to spread requests over")
		rate       = flag.Float64("rate", 0, "open-loop arrivals per second across all clients (0: closed loop)")
		timeout    = flag.Duration("timeout", 30*time.Second, "per-request HTTP timeout")
		wait       = flag.Duration("wait", 10*time.Second, "wait for the daemon's /healthz before starting")
		metricsURL = flag.String("metrics-url", "", "scrape this /metrics URL mid-load and require the server families")
		out        = flag.String("out", "", "write a benchjson-schema report here")
		appendOut  = flag.Bool("append", false, "merge results into an existing -out report")
		seed       = flag.Uint64("seed", 1, "workload seed")
	)
	flag.Parse()
	if *clients < 1 || *n < 1 || (*width != 32 && *width != 64) || *largeN < 0 || *largeEvery < 1 {
		fmt.Fprintln(os.Stderr, "sortload: bad flags")
		return 2
	}
	base := "http://" + *addr
	if *wait > 0 && !waitReady(base, *wait) {
		fmt.Fprintf(os.Stderr, "sortload: %s/healthz not ready after %s\n", base, *wait)
		return 1
	}

	total := *requests
	deadline := time.Time{}
	if total == 0 {
		deadline = time.Now().Add(*duration)
	}

	client := &http.Client{Timeout: *timeout, Transport: &http.Transport{
		MaxIdleConnsPerHost: *clients,
	}}

	// Arrival schedule: open-loop tickets carry their scheduled time;
	// closed-loop tickets are redeemed immediately.
	arrivals := make(chan time.Time, 4**clients)
	stop := make(chan struct{})
	var schedWG sync.WaitGroup
	if *rate > 0 {
		schedWG.Add(1)
		go func() {
			defer schedWG.Done()
			defer close(arrivals)
			interval := time.Duration(float64(time.Second) / *rate)
			next := time.Now()
			sent := 0
			for {
				if total > 0 && sent >= total {
					return
				}
				if !deadline.IsZero() && time.Now().After(deadline) {
					return
				}
				time.Sleep(time.Until(next))
				select {
				case arrivals <- next:
					sent++
				case <-stop:
					return
				}
				next = next.Add(interval)
			}
		}()
	}

	var (
		mu      sync.Mutex
		results []outcome
		sent    atomic.Int64
	)
	scrapeErr := make(chan error, 1)
	if *metricsURL != "" {
		go func() { scrapeErr <- scrapeMidLoad(client, *metricsURL) }()
	} else {
		scrapeErr <- nil
	}

	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := *seed*0x9e3779b97f4a7c15 + uint64(id+1)
			var local []outcome
			for {
				var schedAt time.Time
				if *rate > 0 {
					t, ok := <-arrivals
					if !ok {
						break
					}
					schedAt = t
				} else {
					if total > 0 && sent.Add(1) > int64(total) {
						break
					}
					if !deadline.IsZero() && time.Now().After(deadline) {
						break
					}
					schedAt = time.Now()
				}
				reqN := *n
				large := *largeN > 0 && splitmix(&rng)%uint64(*largeEvery) == 0
				if large {
					reqN = *largeN
				}
				o := oneRequest(client, base, *algo, *width, reqN, *tenants, &rng, schedAt)
				o.large = large
				local = append(local, o)
			}
			mu.Lock()
			results = append(results, local...)
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	close(stop)
	schedWG.Wait()
	elapsed := time.Since(start)

	if err := <-scrapeErr; err != nil {
		fmt.Fprintln(os.Stderr, "sortload: metrics scrape:", err)
		return 1
	}
	return report(results, elapsed, *algo, *clients, *n, *largeN, *out, *appendOut)
}

// oneRequest builds, submits, verifies, and measures a single request,
// honoring Retry-After on admission rejections (the retried latency
// stays charged to the original scheduled arrival — open-loop honesty).
func oneRequest(client *http.Client, base, algo string, width, n, tenants int, rng *uint64, schedAt time.Time) outcome {
	keys := make([]uint64, n)
	var sum uint64
	mask := uint64(1)<<width - 1
	if width == 64 {
		mask = ^uint64(0)
	}
	for i := range keys {
		keys[i] = splitmix(rng) & mask
		sum += keys[i]
	}
	req := sortRequest{
		Tenant: "tenant-" + strconv.Itoa(int(splitmix(rng)%uint64(tenants))),
		Algo:   algo,
		Width:  width,
		Keys:   keys,
	}
	body, _ := json.Marshal(req)

	rejected := false
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(base+"/v1/sort", "application/json", bytes.NewReader(body))
		if err != nil {
			return outcome{latency: time.Since(schedAt), rejected: rejected, err: err}
		}
		if resp.StatusCode == http.StatusServiceUnavailable || resp.StatusCode == http.StatusTooManyRequests {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			rejected = true
			if attempt >= 8 {
				return outcome{latency: time.Since(schedAt), rejected: true,
					err: fmt.Errorf("rejected %d times", attempt+1)}
			}
			sleep := 50 * time.Millisecond
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				if secs, err := strconv.Atoi(ra); err == nil && secs >= 1 {
					sleep = time.Duration(secs) * time.Second / 4
				}
			}
			time.Sleep(sleep)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			return outcome{latency: time.Since(schedAt), rejected: rejected,
				err: fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(msg))}
		}
		var sr sortResponse
		err = json.NewDecoder(resp.Body).Decode(&sr)
		resp.Body.Close()
		lat := time.Since(schedAt)
		if err != nil {
			return outcome{latency: lat, rejected: rejected, err: fmt.Errorf("decode: %w", err)}
		}
		if err := verify(sr.Keys, n, sum); err != nil {
			return outcome{latency: lat, rejected: rejected, err: err}
		}
		return outcome{latency: lat, batched: sr.Batched, rejected: rejected, spilled: sr.Spilled}
	}
}

// verify checks a sorted response: right length, non-decreasing, and the
// additive key checksum preserved.
func verify(keys []uint64, n int, sum uint64) error {
	if len(keys) != n {
		return fmt.Errorf("response has %d keys, want %d", len(keys), n)
	}
	var got uint64
	for i, k := range keys {
		if i > 0 && keys[i-1] > k {
			return fmt.Errorf("response keys not sorted at %d", i)
		}
		got += k
	}
	if got != sum {
		return fmt.Errorf("response key checksum mismatch")
	}
	return nil
}

// waitReady polls /healthz until it answers 200.
func waitReady(base string, budget time.Duration) bool {
	deadline := time.Now().Add(budget)
	client := &http.Client{Timeout: time.Second}
	for time.Now().Before(deadline) {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return true
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return false
}

// scrapeMidLoad fetches the metrics endpoint a moment into the run and
// requires every server family to be present.
func scrapeMidLoad(client *http.Client, url string) error {
	time.Sleep(300 * time.Millisecond)
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d from %s", resp.StatusCode, url)
	}
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	for _, fam := range serverFamilies {
		if !bytes.Contains(text, []byte(fam)) {
			return fmt.Errorf("family %s missing from %s", fam, url)
		}
	}
	fmt.Fprintf(os.Stderr, "sortload: mid-load scrape OK (%d bytes, %d families checked)\n",
		len(text), len(serverFamilies))
	return nil
}

// report prints the per-class latency summaries and writes the benchjson
// recording — one record for the standard class and, when -large-n is
// set, a second for the large class.
func report(results []outcome, elapsed time.Duration, algo string, clients, n, largeN int, out string, appendOut bool) int {
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "sortload: no requests completed")
		return 1
	}
	classes := []struct {
		label   string
		n       int
		results []outcome
	}{{"", n, results}}
	if largeN > 0 {
		var small, large []outcome
		for _, o := range results {
			if o.large {
				large = append(large, o)
			} else {
				small = append(small, o)
			}
		}
		classes[0].results = small
		classes = append(classes, struct {
			label   string
			n       int
			results []outcome
		}{"large", largeN, large})
	}
	appendNext := appendOut
	for _, c := range classes {
		if len(c.results) == 0 {
			fmt.Fprintf(os.Stderr, "sortload: class %q sampled no requests; nothing recorded\n", c.label)
			continue
		}
		if code := reportClass(c.results, elapsed, algo, c.label, clients, c.n, out, appendNext); code != 0 {
			return code
		}
		appendNext = true // later classes merge into the file just written
	}
	return 0
}

// reportClass summarizes one request class and appends its record.
func reportClass(results []outcome, elapsed time.Duration, algo, label string, clients, n int, out string, appendOut bool) int {
	var lats []time.Duration
	var errs, rejected, batched, spilled int
	var firstErr error
	for _, o := range results {
		if o.err != nil {
			errs++
			if firstErr == nil {
				firstErr = o.err
			}
			continue
		}
		lats = append(lats, o.latency)
		if o.batched {
			batched++
		}
		if o.rejected {
			rejected++
		}
		if o.spilled {
			spilled++
		}
	}
	tag := ""
	if label != "" {
		tag = " [" + label + "]"
	}
	if len(lats) == 0 {
		fmt.Fprintf(os.Stderr, "sortload:%s every request failed; first error: %v\n", tag, firstErr)
		return 1
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := func(p float64) time.Duration {
		i := int(math.Ceil(p*float64(len(lats)))) - 1
		if i < 0 {
			i = 0
		}
		return lats[i]
	}
	var total time.Duration
	for _, l := range lats {
		total += l
	}
	mean := total / time.Duration(len(lats))
	rps := float64(len(lats)) / elapsed.Seconds()

	fmt.Printf("sortload:%s %d ok, %d failed, %d retried-after-rejection, %d batched, %d spilled in %s (%.0f req/s)\n",
		tag, len(lats), errs, rejected, batched, spilled, elapsed.Round(time.Millisecond), rps)
	fmt.Printf("latency:%s p50 %s  p95 %s  p99 %s  max %s  mean %s\n",
		tag, q(0.50), q(0.95), q(0.99), lats[len(lats)-1], mean)
	if errs > 0 {
		fmt.Fprintf(os.Stderr, "sortload:%s %d requests failed; first error: %v\n", tag, errs, firstErr)
		return 1
	}

	if out != "" {
		name := fmt.Sprintf("SortdLatency/algo=%s/clients=%d/n=%d", algo, clients, n)
		if label != "" {
			name += "/class=" + label
		}
		res := benchResult{
			Name:    name,
			Iters:   int64(len(lats)),
			NsPerOp: float64(mean.Nanoseconds()),
			Extra: map[string]float64{
				"p50_ns":         float64(q(0.50).Nanoseconds()),
				"p95_ns":         float64(q(0.95).Nanoseconds()),
				"p99_ns":         float64(q(0.99).Nanoseconds()),
				"max_ns":         float64(lats[len(lats)-1].Nanoseconds()),
				"throughput_rps": rps,
				"rejected":       float64(rejected),
				"batched":        float64(batched),
				"spilled":        float64(spilled),
			},
		}
		if err := writeReport(out, appendOut, res); err != nil {
			fmt.Fprintln(os.Stderr, "sortload:", err)
			return 1
		}
		fmt.Fprintln(os.Stderr, "sortload: recorded", name, "->", out)
	}
	return 0
}

// writeReport writes (or merges into) a benchjson-schema report.
func writeReport(path string, appendOut bool, res benchResult) error {
	rep := benchReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Command:   "sortload",
	}
	if appendOut {
		if data, err := os.ReadFile(path); err == nil {
			if err := json.Unmarshal(data, &rep); err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
		}
	}
	// Replace an existing same-name result rather than duplicating it.
	kept := rep.Results[:0]
	for _, r := range rep.Results {
		if r.Name != res.Name {
			kept = append(kept, r)
		}
	}
	rep.Results = append(kept, res)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// splitmix advances a splitmix64 state — the deterministic workload
// generator.
func splitmix(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
