// Command doccheck is the repository's documentation lint: it walks every
// package of the module and fails when an exported symbol — function,
// method, type, constant, or variable — lacks a doc comment, or when a
// package has no package-level doc comment at all. verify.sh runs it over
// the whole module so the godoc coverage of the public and internal
// surfaces cannot regress silently.
//
// The rules follow the godoc conventions:
//
//   - every exported func/method needs a doc comment (methods on
//     unexported receiver types are exempt: godoc does not render them);
//   - every exported type needs a doc comment on its spec or its decl;
//   - exported consts/vars need a doc comment on the spec or on the
//     enclosing grouped declaration (one comment may document a block);
//   - every package needs a package comment in at least one file.
//
// Test files are skipped: their helpers are not part of any documented
// surface.
//
// Usage:
//
//	doccheck [dir ...]   # default: the current directory tree
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: doccheck [dir ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}

	var dirs []string
	for _, root := range roots {
		found, err := goDirs(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		dirs = append(dirs, found...)
	}

	var violations []string
	for _, dir := range dirs {
		v, err := checkDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		violations = append(violations, v...)
	}
	if len(violations) > 0 {
		sort.Strings(violations)
		for _, v := range violations {
			fmt.Println(v)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported symbol(s)\n", len(violations))
		os.Exit(1)
	}
	fmt.Println("doccheck: OK")
}

// goDirs returns every directory under root that contains non-test Go
// files, skipping hidden directories, testdata, and vendored trees.
func goDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
		return nil
	})
	sort.Strings(dirs)
	return dirs, err
}

// checkDir parses every non-test Go file of one directory and returns its
// violations as "path:line: message" strings.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}

	var out []string
	for name, pkg := range pkgs {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		hasPkgDoc := false
		var firstFile string
		var firstPos token.Position
		// Deterministic file order for stable output.
		files := make([]string, 0, len(pkg.Files))
		for fname := range pkg.Files {
			files = append(files, fname)
		}
		sort.Strings(files)
		for _, fname := range files {
			f := pkg.Files[fname]
			if f.Doc != nil {
				hasPkgDoc = true
			}
			if firstFile == "" {
				firstFile = fname
				firstPos = fset.Position(f.Package)
			}
			out = append(out, checkFile(fset, f)...)
		}
		if !hasPkgDoc {
			out = append(out, fmt.Sprintf("%s:%d: package %s lacks a package doc comment",
				firstFile, firstPos.Line, name))
		}
	}
	return out, nil
}

// checkFile reports the undocumented exported declarations of one file.
func checkFile(fset *token.FileSet, f *ast.File) []string {
	var out []string
	report := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, fmt.Sprintf(format, args...)))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if recv, ok := receiverName(d); ok {
				if !ast.IsExported(recv) {
					continue // method on an unexported type: not in godoc
				}
				report(d.Pos(), "exported method %s.%s lacks a doc comment", recv, d.Name.Name)
			} else {
				report(d.Pos(), "exported function %s lacks a doc comment", d.Name.Name)
			}
		case *ast.GenDecl:
			switch d.Tok {
			case token.TYPE:
				for _, spec := range d.Specs {
					ts := spec.(*ast.TypeSpec)
					if !ts.Name.IsExported() {
						continue
					}
					if ts.Doc == nil && d.Doc == nil {
						report(ts.Pos(), "exported type %s lacks a doc comment", ts.Name.Name)
					}
				}
			case token.CONST, token.VAR:
				kind := "const"
				if d.Tok == token.VAR {
					kind = "var"
				}
				// A doc comment on the grouped declaration documents the
				// whole block (the godoc convention for const blocks).
				if d.Doc != nil {
					continue
				}
				for _, spec := range d.Specs {
					vs := spec.(*ast.ValueSpec)
					if vs.Doc != nil || vs.Comment != nil {
						continue
					}
					for _, n := range vs.Names {
						if n.IsExported() {
							report(n.Pos(), "exported %s %s lacks a doc comment", kind, n.Name)
						}
					}
				}
			}
		}
	}
	return out
}

// receiverName returns the base type name of a method receiver, or
// ok=false for a plain function.
func receiverName(d *ast.FuncDecl) (string, bool) {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return "", false
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[K]
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name, true
		default:
			return "", false
		}
	}
}
