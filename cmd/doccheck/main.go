// Command doccheck is the repository's documentation lint: it walks every
// package of the module and fails when an exported symbol — function,
// method, type, constant, or variable — lacks a doc comment, or when a
// package has no package-level doc comment at all. verify.sh runs it over
// the whole module so the godoc coverage of the public and internal
// surfaces cannot regress silently.
//
// The rules follow the godoc conventions:
//
//   - every exported func/method needs a doc comment (methods on
//     unexported receiver types are exempt: godoc does not render them);
//   - every exported type needs a doc comment on its spec or its decl;
//   - exported consts/vars need a doc comment on the spec or on the
//     enclosing grouped declaration (one comment may document a block);
//   - every package needs a package comment in at least one file;
//   - a main package under a cmd/ tree must open its package comment with
//     "Command <dirname>", the go tool's convention for binaries.
//
// Test files are skipped: their helpers are not part of any documented
// surface.
//
// With -ops FILE the lint additionally collects every metric family name
// registered in the scanned packages — string literals starting with
// "partsort_", including names assembled as <prefix const> + "literal" —
// and fails unless each family appears in FILE. verify.sh points it at
// OPERATIONS.md so the operator runbook's metrics reference cannot fall
// behind the registry.
//
// Usage:
//
//	doccheck [-ops OPERATIONS.md] [dir ...]   # default: the current directory tree
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

func main() {
	opsPath := flag.String("ops", "", "require every registered metric family to appear in this runbook file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: doccheck [-ops FILE] [dir ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}

	var dirs []string
	for _, root := range roots {
		found, err := goDirs(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		dirs = append(dirs, found...)
	}

	var violations []string
	families := map[string]string{} // family name -> first registration site
	for _, dir := range dirs {
		v, err := checkDir(dir, families)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		violations = append(violations, v...)
	}
	if *opsPath != "" {
		v, err := checkOpsCoverage(*opsPath, families)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		violations = append(violations, v...)
	}
	if len(violations) > 0 {
		sort.Strings(violations)
		for _, v := range violations {
			fmt.Println(v)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d violation(s)\n", len(violations))
		os.Exit(1)
	}
	fmt.Println("doccheck: OK")
}

// goDirs returns every directory under root that contains non-test Go
// files, skipping hidden directories, testdata, and vendored trees.
func goDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
		return nil
	})
	sort.Strings(dirs)
	return dirs, err
}

// checkDir parses every non-test Go file of one directory and returns its
// violations as "path:line: message" strings, recording any metric family
// names the files register into families.
func checkDir(dir string, families map[string]string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}

	var out []string
	for name, pkg := range pkgs {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		hasPkgDoc := false
		var firstFile string
		var firstPos token.Position
		// Deterministic file order for stable output.
		files := make([]string, 0, len(pkg.Files))
		for fname := range pkg.Files {
			files = append(files, fname)
		}
		sort.Strings(files)
		consts := stringConsts(pkg)
		for _, fname := range files {
			f := pkg.Files[fname]
			if f.Doc != nil {
				hasPkgDoc = true
				if v := checkCmdConvention(dir, name, f, fset); v != "" {
					out = append(out, v)
				}
			}
			if firstFile == "" {
				firstFile = fname
				firstPos = fset.Position(f.Package)
			}
			out = append(out, checkFile(fset, f)...)
			collectFamilies(fset, f, consts, families)
		}
		if !hasPkgDoc {
			out = append(out, fmt.Sprintf("%s:%d: package %s lacks a package doc comment",
				firstFile, firstPos.Line, name))
		}
	}
	return out, nil
}

// checkFile reports the undocumented exported declarations of one file.
func checkFile(fset *token.FileSet, f *ast.File) []string {
	var out []string
	report := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, fmt.Sprintf(format, args...)))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if recv, ok := receiverName(d); ok {
				if !ast.IsExported(recv) {
					continue // method on an unexported type: not in godoc
				}
				report(d.Pos(), "exported method %s.%s lacks a doc comment", recv, d.Name.Name)
			} else {
				report(d.Pos(), "exported function %s lacks a doc comment", d.Name.Name)
			}
		case *ast.GenDecl:
			switch d.Tok {
			case token.TYPE:
				for _, spec := range d.Specs {
					ts := spec.(*ast.TypeSpec)
					if !ts.Name.IsExported() {
						continue
					}
					if ts.Doc == nil && d.Doc == nil {
						report(ts.Pos(), "exported type %s lacks a doc comment", ts.Name.Name)
					}
				}
			case token.CONST, token.VAR:
				kind := "const"
				if d.Tok == token.VAR {
					kind = "var"
				}
				// A doc comment on the grouped declaration documents the
				// whole block (the godoc convention for const blocks).
				if d.Doc != nil {
					continue
				}
				for _, spec := range d.Specs {
					vs := spec.(*ast.ValueSpec)
					if vs.Doc != nil || vs.Comment != nil {
						continue
					}
					for _, n := range vs.Names {
						if n.IsExported() {
							report(n.Pos(), "exported %s %s lacks a doc comment", kind, n.Name)
						}
					}
				}
			}
		}
	}
	return out
}

// checkCmdConvention enforces the binary-doc convention: a main package
// under a cmd/ tree opens its package comment with "Command <dirname>".
func checkCmdConvention(dir, pkgName string, f *ast.File, fset *token.FileSet) string {
	if pkgName != "main" {
		return ""
	}
	base := filepath.Base(dir)
	parent := filepath.Base(filepath.Dir(dir))
	if parent != "cmd" {
		return ""
	}
	want := "Command " + base
	if !strings.HasPrefix(strings.TrimSpace(f.Doc.Text()), want) {
		p := fset.Position(f.Doc.Pos())
		return fmt.Sprintf("%s:%d: package doc of cmd/%s must start with %q",
			p.Filename, p.Line, base, want)
	}
	return ""
}

// stringConsts maps a package's string-constant names to their values —
// the prefix constants metric families are assembled from.
func stringConsts(pkg *ast.Package) map[string]string {
	consts := map[string]string{}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			d, ok := decl.(*ast.GenDecl)
			if !ok || d.Tok != token.CONST {
				continue
			}
			for _, spec := range d.Specs {
				vs := spec.(*ast.ValueSpec)
				for i, name := range vs.Names {
					if i >= len(vs.Values) {
						continue
					}
					if lit, ok := vs.Values[i].(*ast.BasicLit); ok && lit.Kind == token.STRING {
						if v, err := strconv.Unquote(lit.Value); err == nil {
							consts[name.Name] = v
						}
					}
				}
			}
		}
	}
	return consts
}

// collectFamilies records every metric family name a file registers: a
// string literal starting with "partsort_" (prefix constants, which end
// in "_", are not themselves families), or a <prefix const> + "literal"
// concatenation resolving to one.
func collectFamilies(fset *token.FileSet, f *ast.File, consts map[string]string, families map[string]string) {
	record := func(name string, pos token.Pos) {
		if !strings.HasPrefix(name, "partsort_") || strings.HasSuffix(name, "_") || !isFamilyName(name) {
			return
		}
		if _, seen := families[name]; !seen {
			p := fset.Position(pos)
			families[name] = fmt.Sprintf("%s:%d", p.Filename, p.Line)
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.BasicLit:
			if e.Kind == token.STRING {
				if v, err := strconv.Unquote(e.Value); err == nil {
					record(v, e.Pos())
				}
			}
		case *ast.BinaryExpr:
			if e.Op != token.ADD {
				return true
			}
			id, ok := e.X.(*ast.Ident)
			if !ok {
				return true
			}
			prefix, ok := consts[id.Name]
			if !ok || !strings.HasPrefix(prefix, "partsort_") {
				return true
			}
			if lit, ok := e.Y.(*ast.BasicLit); ok && lit.Kind == token.STRING {
				if v, err := strconv.Unquote(lit.Value); err == nil {
					record(prefix+v, e.Pos())
					return false // the literal alone is not a family
				}
			}
		}
		return true
	})
}

// isFamilyName reports whether s is a bare metric family name — only
// lowercase letters, digits, and underscores. Prose and rendered series
// strings (spaces, braces, quotes) mentioning a family are not
// registrations.
func isFamilyName(s string) bool {
	for _, c := range s {
		if c != '_' && (c < 'a' || c > 'z') && (c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// checkOpsCoverage fails every registered metric family that the runbook
// file never mentions.
func checkOpsCoverage(path string, families map[string]string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	doc := string(data)
	var out []string
	for name, site := range families {
		if !strings.Contains(doc, name) {
			out = append(out, fmt.Sprintf("%s: metric family %s (registered at %s) is undocumented",
				path, name, site))
		}
	}
	if len(families) > 0 {
		fmt.Printf("doccheck: %d metric families checked against %s\n", len(families), path)
	}
	return out, nil
}

// receiverName returns the base type name of a method receiver, or
// ok=false for a plain function.
func receiverName(d *ast.FuncDecl) (string, bool) {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return "", false
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[K]
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name, true
		default:
			return "", false
		}
	}
}
