package partsort

import (
	"math/bits"

	"repro/internal/kv"
	"repro/internal/tune"
)

// Algorithm identifies one of the three sorting algorithms.
type Algorithm int

// The sorting algorithms of Section 4.
const (
	LSB Algorithm = iota // stable least-significant-bit radix-sort
	MSB                  // in-place most-significant-bit radix-sort
	CMP                  // range-partitioning comparison sort
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case LSB:
		return "LSB"
	case MSB:
		return "MSB"
	case CMP:
		return "CMP"
	}
	return "unknown"
}

// Workload describes a sorting problem for Recommend. Recommend
// validates it: out-of-range fields raise an *ArgError (see the
// accepted range on each field).
type Workload struct {
	// N is the tuple count; must be at least 1 (an empty problem has no
	// recommendation — Sort handles empty inputs itself).
	N int
	// DomainBits is the key domain width logD (use kv width for sparse
	// domains, or the dictionary code width for compressed columns).
	// Must be in [0, 64]; 0 means "unknown": the full key width is
	// assumed.
	DomainBits int
	// KeyBits is the key type width. Must be 32, 64, or 0 ("unknown":
	// 64 is assumed when DomainBits is also unknown).
	KeyBits int
	// SpaceTight: no linear auxiliary array can be afforded.
	SpaceTight bool
	// HeavySkew: the distribution has keys heavy enough to defeat
	// radix-bucket balancing (Zipf theta >= ~1.2 or known hot keys).
	HeavySkew bool
	// NeedStable: payloads of equal keys must keep input order.
	NeedStable bool
}

// Recommend applies the paper's conclusion (Section 6) as a decision
// procedure: LSB radix-sort on dense (compressed) key domains; MSB
// radix-sort on sparse domains or when auxiliary space cannot be spared;
// comparison sort when load balancing under heavy skew matters most.
// Stability forces LSB, the only stable algorithm of the three.
//
// The workload must be well-formed (see the Workload field ranges):
// N >= 1, KeyBits one of 0/32/64, DomainBits in [0, 64]. Anything else
// panics with an *ArgError naming the offending field — previously such
// workloads were silently accepted and produced a recommendation based
// on garbage.
func Recommend(w Workload) Algorithm {
	mustValid(validateWorkload("Recommend", w))
	if w.NeedStable {
		return LSB
	}
	if w.SpaceTight {
		return MSB
	}
	if w.HeavySkew {
		return CMP
	}
	domain := w.DomainBits
	if domain <= 0 {
		domain = w.KeyBits
	}
	if domain <= 0 {
		domain = 64
	}
	// Dense vs sparse: LSB does ceil(logD / bits) passes, MSB ~ceil(logN /
	// bits). When the domain is not much wider than the data, LSB's
	// simpler passes win; when the domain is far wider, MSB stops early.
	logN := bits.Len(uint(max(w.N, 2) - 1))
	if domain <= logN+8 {
		return LSB
	}
	return MSB
}

// Sort runs the recommended algorithm for the workload it derives from the
// input (domain detected by scanning) and the given requirements. An empty
// input is trivially sorted: Sort returns LSB without consulting
// Recommend. With opt.AutoTune set, the static decision table is replaced
// by the machine-calibrated planner: the key column is sampled (no full
// scan) and the algorithm with the lowest modeled cost on this machine
// wins, under the same needStable/spaceTight constraints.
func Sort[K Key](keys, vals []K, needStable, spaceTight bool, opt *SortOptions) Algorithm {
	mustValid(validatePairs("Sort", "keys", "vals", keys, vals))
	mustValid(validateOptions("Sort", opt))
	if len(keys) == 0 {
		return LSB
	}
	if opt != nil && opt.AutoTune {
		eff, plan := autotune(keys, opt, "", needStable, spaceTight)
		if plan != nil {
			switch plan.Algo {
			case tune.AlgoMSB:
				SortMSB(keys, vals, eff)
				return MSB
			case tune.AlgoCMP:
				SortCMP(keys, vals, eff)
				return CMP
			default:
				SortLSB(keys, vals, eff)
				return LSB
			}
		}
		opt = eff // below the planning threshold: static path, no re-plan
	}
	w := Workload{
		N:          len(keys),
		DomainBits: kv.DomainBits(keys),
		KeyBits:    kv.Width[K](),
		SpaceTight: spaceTight,
		NeedStable: needStable,
	}
	a := Recommend(w)
	switch a {
	case LSB:
		SortLSB(keys, vals, opt)
	case MSB:
		SortMSB(keys, vals, opt)
	case CMP:
		SortCMP(keys, vals, opt)
	}
	return a
}
