package partsort

import (
	"sync"
	"sync/atomic"

	"repro/internal/kv"
	"repro/internal/obs"
	"repro/internal/tune"
)

// MachineProfile is the calibrated description of the host machine: the
// Section 3.2 cost factors (sequential-read baseline, histogram
// throughput, the in-cache versus out-of-cache scatter cost per fanout)
// measured by running this library's own kernels. Calibrate once, Save
// the JSON, and reuse it across processes via SortOptions.Profile or
// LoadMachineProfile. See README "Auto-tuning".
type MachineProfile = tune.MachineProfile

// SortPlan is the adaptive planner's output for one auto-tuned sort:
// algorithm, radix bits per pass, range fanout, worker count, and the
// modeled costs behind them. Auto-tuned runs record theirs in
// SortStats.Plan.
type SortPlan = tune.Plan

// The process-wide machine profile auto-tuned sorts fall back to when
// SortOptions.Profile is nil; nil until Calibrate, SetMachineProfile,
// LoadMachineProfile, or the first lazy quick calibration installs one.
var (
	procProfile atomic.Pointer[tune.MachineProfile]
	calibrateMu sync.Mutex
)

// Calibrate runs the full calibration probes (a few hundred milliseconds
// of self-timed microbenchmarks over this library's partitioning
// kernels), installs the resulting profile as the process-wide default
// for auto-tuned sorts, and returns it. Call it once at startup — or
// once per machine: profiles round-trip through JSON (Save/Load) and
// cmd/tunecli calibrates offline.
func Calibrate() *MachineProfile {
	calibrateMu.Lock()
	defer calibrateMu.Unlock()
	p := tune.Calibrate(tune.Config{})
	procProfile.Store(p)
	return p
}

// SetMachineProfile installs p as the process-wide profile auto-tuned
// sorts use when SortOptions.Profile is nil. Returns the profile's
// validation error (and installs nothing) if p is malformed.
func SetMachineProfile(p *MachineProfile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	procProfile.Store(p)
	return nil
}

// LoadMachineProfile reads a profile previously saved by
// (*MachineProfile).Save or cmd/tunecli, installs it process-wide, and
// returns it — the reuse half of the calibrate-once workflow.
func LoadMachineProfile(path string) (*MachineProfile, error) {
	p, err := tune.Load(path)
	if err != nil {
		return nil, err
	}
	procProfile.Store(p)
	return p, nil
}

// currentProfile returns the process-wide profile, quick-calibrating one
// on first use (tens of milliseconds, once per process) so AutoTune
// works without any setup call.
func currentProfile() *tune.MachineProfile {
	if p := procProfile.Load(); p != nil {
		return p
	}
	calibrateMu.Lock()
	defer calibrateMu.Unlock()
	if p := procProfile.Load(); p != nil {
		return p
	}
	p := tune.Calibrate(tune.Config{Quick: true})
	procProfile.Store(p)
	return p
}

// autotuneMinN is the input size below which auto-tuning is skipped
// entirely: sampling plus planning costs more than any knob could
// recover on a run that finishes in microseconds.
const autotuneMinN = 1 << 12

// algoCode numbers the planner's algorithm choice for the numeric
// obs.Meta args (0 LSB, 1 MSB, 2 CMP).
func algoCode(a tune.Algo) uint64 {
	switch a {
	case tune.AlgoMSB:
		return 1
	case tune.AlgoCMP:
		return 2
	}
	return 0
}

// autotune applies the adaptive planner to one AutoTune run: it samples
// the key column, asks the planner for a plan under the entry point's
// constraints, and returns effective options — a copy with AutoTune
// cleared (so nested entry points do not re-plan) and only the
// zero-valued knobs filled from the plan; knobs the caller set
// explicitly always win. The plan is recorded in opt.Stats.Plan and
// emitted as an obs "autotune-plan" meta event. Returns (opt, nil)
// untouched when auto-tuning is off, and a nil plan below autotuneMinN.
func autotune[K Key](keys []K, opt *SortOptions, force tune.Algo, needStable, spaceTight bool) (*SortOptions, *SortPlan) {
	if opt == nil || !opt.AutoTune {
		return opt, nil
	}
	eff := *opt
	eff.AutoTune = false
	if len(keys) < autotuneMinN {
		return &eff, nil
	}
	prof := eff.Profile
	if prof == nil {
		prof = currentProfile()
	}
	w := tune.SampleKeys(keys, 0, eff.Seed)
	req := tune.Requirements{
		KeyBits:    kv.Width[K](),
		NeedStable: needStable,
		SpaceTight: spaceTight,
		Force:      force,
		MaxThreads: eff.Threads,
		MaxBytes:   eff.MaxAuxBytes,
	}
	plan := tune.Choose(prof, w, req)
	if eff.Threads == 0 {
		eff.Threads = plan.Threads
	}
	if eff.RadixBits == 0 {
		eff.RadixBits = plan.RadixBits
	}
	if eff.RangeFanout == 0 {
		eff.RangeFanout = plan.RangeFanout
	}
	inPlace := uint64(0)
	if plan.InPlace {
		inPlace = 1
	}
	obs.Meta("autotune-plan", map[string]uint64{
		"algo":         algoCode(plan.Algo),
		"radix_bits":   uint64(plan.RadixBits),
		"range_fanout": uint64(plan.RangeFanout),
		"threads":      uint64(plan.Threads),
		"passes":       uint64(plan.Passes),
		"predicted_ns": uint64(plan.PredictedNs),
		"baseline_ns":  uint64(plan.BaselineNs),
		"in_place":     inPlace,
		"aux_bytes":    uint64(plan.AuxBytes),
	})
	if eff.Stats != nil {
		eff.Stats.Plan = &plan
	}
	return &eff, &plan
}
