package partsort

import (
	"context"
	"errors"

	"repro/internal/extsort"
	"repro/internal/hard"
	"repro/internal/kv"
	"repro/internal/tune"
)

// ExternalStats reports what one SortExternal run did: whether it
// spilled, how many bytes moved through the spill files, segment and
// merge counts, and the I/O-overlap split (IONs vs StallNs — see
// OverlapRatio).
type ExternalStats = extsort.Stats

// ErrSpillBudget is wrapped by the *SpillError returned when an external
// sort would exceed SortOptions.MaxSpillBytes of disk.
var ErrSpillBudget = extsort.ErrDiskBudget

// ErrSpillCorrupt is wrapped by the *SpillError returned when a sealed
// run read back from disk fails its count or checksum seal.
var ErrSpillCorrupt = extsort.ErrCorrupt

// SpillPlan is the external-sort shape PlanSpill derives from an input
// size and memory budget; sortd charges external jobs its MemBytes.
type SpillPlan = tune.SpillPlan

// PlanSpill plans the external-sort decision for n tuples of keyBits-bit
// keys under an auxiliary-memory budget of maxAux bytes (0: the default
// budget of half the machine's available memory): whether the input must
// spill at all and, if so, the segment, fanout, line, block, and merge
// shape plus the peak resident footprint MemBytes.
func PlanSpill(n, keyBits int, maxAux int64) SpillPlan {
	return tune.PlanSpill(n, keyBits, maxAux, nil)
}

// SortExternal sorts (keys, vals) by key even when the working set
// exceeds the auxiliary-memory budget, by spilling to disk: one
// counting-free streaming pass forms key-range runs in a temp directory,
// each run is sorted in memory at segment granularity, and a pipelined
// file-backed W-way merge (prefetch overlapped with merge compute)
// produces the sorted output in place. Inputs that fit one segment never
// touch disk. Not stable.
//
// Argument problems return *ArgError, spill I/O failures *SpillError
// (disk budget overruns unwrap to ErrSpillBudget), contained worker
// panics *InternalError. On error keys/vals hold a permutation of the
// input and every temp file has been removed.
func SortExternal[K Key](keys, vals []K, opt *SortOptions) (ExternalStats, error) {
	return SortExternalCtx(context.Background(), keys, vals, opt)
}

// SortExternalCtx is SortExternal under a context: cancellation is
// observed between work chunks of every phase, unwinds cooperatively
// (restoring keys/vals to a permutation of the input and removing the
// temp files), and returns ctx.Err().
func SortExternalCtx[K Key](ctx context.Context, keys, vals []K, opt *SortOptions) (ExternalStats, error) {
	const op = "SortExternal"
	var st ExternalStats
	if err := validatePairs(op, "keys", "vals", keys, vals); err != nil {
		return st, err
	}
	if err := validateOptions(op, opt); err != nil {
		return st, err
	}
	eo := externalOptions[K](opt, len(keys))
	var runErr error
	err := tryRun(op, ctx, optWorkspace(opt), optMaxAux(opt), func(ctl *hard.Ctl) {
		st, runErr = extsort.Run(ctl, keys, vals, optWorkspace(opt).internal(), eo)
	})
	if err != nil {
		return st, err
	}
	if runErr != nil {
		return st, wrapSpill(op, runErr)
	}
	return st, nil
}

// externalOptions resolves the extsort configuration: tune.PlanSpill
// shapes every knob from the memory budget, explicit Spill* overrides
// win, and a non-spilling plan widens the segment so the whole input
// takes the in-memory path.
func externalOptions[K Key](opt *SortOptions, n int) extsort.Options {
	maxAux := optMaxAux(opt)
	var prof *tune.MachineProfile
	threads, radixBits := 1, 0
	eo := extsort.Options{}
	if opt != nil {
		prof = opt.Profile
		threads, radixBits = opt.Threads, opt.RadixBits
		eo.TempDir = opt.TempDir
		eo.MaxSpillBytes = opt.MaxSpillBytes
	}
	plan := tune.PlanSpill(n, kv.Width[K](), maxAux, prof)
	eo.SegmentTuples = plan.SegmentTuples
	eo.BucketBits = plan.BucketBits
	eo.MergeWidth = plan.MergeWidth
	eo.LineTuples = plan.LineTuples
	eo.BlockTuples = plan.BlockTuples
	eo.Threads = threads
	eo.RadixBits = radixBits
	if opt != nil {
		if opt.SpillSegmentTuples > 0 {
			eo.SegmentTuples = opt.SpillSegmentTuples
		} else if !plan.Spill {
			// The plan says the input fits the memory budget: make the
			// segment cover it so Run takes the in-memory shortcut.
			eo.SegmentTuples = n
		}
		if opt.SpillBucketBits > 0 {
			eo.BucketBits = opt.SpillBucketBits
		}
		if opt.SpillMergeWidth > 0 {
			eo.MergeWidth = opt.SpillMergeWidth
		}
	} else if !plan.Spill {
		eo.SegmentTuples = n
	}
	// A quarter segment per prefetch block keeps each sealed run several
	// blocks deep, so the merge iterators genuinely double-buffer even
	// when an override shrank the segments below the planned size.
	if b := eo.SegmentTuples / 4; b < eo.BlockTuples {
		eo.BlockTuples = b
	}
	return eo
}

// wrapSpill maps an extsort error onto the public taxonomy.
func wrapSpill(op string, err error) error {
	var ioe *extsort.IOError
	if errors.As(err, &ioe) {
		return &SpillError{Op: op, Path: ioe.Path, Err: err}
	}
	return &SpillError{Op: op, Path: "?", Err: err}
}
