package partsort

import (
	"testing"

	"repro/internal/gen"
)

func TestPublicHistogramAndColumns(t *testing.T) {
	n := 1 << 12
	keys := gen.Uniform[uint32](n, 0, 3)
	fn := Hash[uint32](16)
	hist := Histogram(keys, fn)
	total := 0
	for _, h := range hist {
		total += h
	}
	if total != n {
		t.Fatalf("histogram total %d", total)
	}

	colA := RIDs[uint32](n)
	colB := gen.Uniform[uint32](n, 100, 5)
	dstKey := make([]uint32, n)
	dst := [][]uint32{make([]uint32, n), make([]uint32, n)}
	hist2 := PartitionColumns(keys, [][]uint32{colA, colB}, dstKey, dst, fn)
	o := 0
	for p, h := range hist2 {
		for i := o; i < o+h; i++ {
			if fn.Partition(dstKey[i]) != p {
				t.Fatal("misplaced tuple")
			}
		}
		o += h
	}
	// colA carries original positions: cross-check colB moved with it.
	for i := range dstKey {
		if dst[1][i] != colB[dst[0][i]] {
			t.Fatalf("columns desynchronized at %d", i)
		}
	}
}

func TestPublicBlockListsAppendTo(t *testing.T) {
	n := 1 << 12
	keys := gen.Uniform[uint32](n, 0, 7)
	vals := RIDs[uint32](n)
	fn := Radix[uint32](0, 3)
	bl := PartitionBlocks(keys, vals, fn, 0, 2)
	counts := bl.Counts()
	for p, c := range counts {
		dstK := make([]uint32, c)
		dstV := make([]uint32, c)
		if got := bl.AppendTo(p, dstK, dstV); got != c {
			t.Fatalf("AppendTo(%d) = %d, want %d", p, got, c)
		}
		for _, k := range dstK {
			if fn.Partition(k) != p {
				t.Fatal("wrong partition content")
			}
		}
	}
}

func TestIsStableSortedNegativeCases(t *testing.T) {
	if IsStableSorted([]uint32{2, 1}, []uint32{0, 1}) {
		t.Fatal("unsorted keys accepted")
	}
	if IsStableSorted([]uint32{1, 1}, []uint32{1, 0}) {
		t.Fatal("payload inversion accepted")
	}
	if !IsStableSorted([]uint32{1, 1, 2}, []uint32{0, 1, 0}) {
		t.Fatal("valid stable order rejected")
	}
}
