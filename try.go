package partsort

import (
	"context"
	"fmt"
	"runtime/debug"
	"unsafe"

	"repro/internal/hard"
	"repro/internal/part"
	"repro/internal/sortalgo"
	"repro/internal/tune"
	"repro/internal/ws"
)

// maxRadixBits bounds SortOptions.RadixBits: 2^16 histogram entries is
// already far past the out-of-cache optimum, and larger fanouts overflow
// the per-pass tables the kernels size for.
const maxRadixBits = 16

// validatePairs checks that a key column and its payload column have equal
// length. Every entry point — Try and legacy — routes through it.
func validatePairs[K Key](fn, keyField, valField string, keys, vals []K) *ArgError {
	if len(keys) != len(vals) {
		return &ArgError{Func: fn, Field: valField,
			Reason: fmt.Sprintf("length %d does not match %s length %d", len(vals), keyField, len(keys))}
	}
	return nil
}

// validateScratch checks caller-provided auxiliary arrays against the
// input length.
func validateScratch[K Key](fn string, keys, tmpKeys, tmpVals []K) *ArgError {
	if len(tmpKeys) != len(keys) {
		return &ArgError{Func: fn, Field: "tmpKeys",
			Reason: fmt.Sprintf("length %d does not match keys length %d", len(tmpKeys), len(keys))}
	}
	if len(tmpVals) != len(keys) {
		return &ArgError{Func: fn, Field: "tmpVals",
			Reason: fmt.Sprintf("length %d does not match keys length %d", len(tmpVals), len(keys))}
	}
	return nil
}

// validateOptions checks every SortOptions field up front, so option
// mistakes surface as one *ArgError instead of a panic (or silent
// misbehavior) deep inside a parallel pass. The zero value of every field
// remains valid and selects the documented default.
func validateOptions(fn string, opt *SortOptions) *ArgError {
	if opt == nil {
		return nil
	}
	if opt.Threads < 0 {
		return &ArgError{Func: fn, Field: "Threads",
			Reason: fmt.Sprintf("%d; must be non-negative (0 selects the default)", opt.Threads)}
	}
	if opt.Regions < 0 {
		return &ArgError{Func: fn, Field: "Regions",
			Reason: fmt.Sprintf("%d; must be non-negative (0 selects the default)", opt.Regions)}
	}
	if opt.RadixBits < 0 || opt.RadixBits > maxRadixBits {
		return &ArgError{Func: fn, Field: "RadixBits",
			Reason: fmt.Sprintf("%d; must be in [1, %d] (0 selects the default)", opt.RadixBits, maxRadixBits)}
	}
	if opt.RangeFanout < 0 {
		return &ArgError{Func: fn, Field: "RangeFanout",
			Reason: fmt.Sprintf("%d; must be non-negative (0 selects the default)", opt.RangeFanout)}
	}
	if opt.CacheTuples < 0 {
		return &ArgError{Func: fn, Field: "CacheTuples",
			Reason: fmt.Sprintf("%d; must be non-negative (0 selects the default)", opt.CacheTuples)}
	}
	if opt.MaxAuxBytes < 0 {
		return &ArgError{Func: fn, Field: "MaxAuxBytes",
			Reason: fmt.Sprintf("%d; must be non-negative (0 selects the default budget)", opt.MaxAuxBytes)}
	}
	if opt.Profile != nil {
		if err := opt.Profile.Validate(); err != nil {
			return &ArgError{Func: fn, Field: "Profile", Reason: err.Error()}
		}
	}
	if opt.SpillSegmentTuples < 0 {
		return &ArgError{Func: fn, Field: "SpillSegmentTuples",
			Reason: fmt.Sprintf("%d; must be non-negative (0 selects the planned size)", opt.SpillSegmentTuples)}
	}
	if opt.SpillBucketBits < 0 || opt.SpillBucketBits > 16 {
		return &ArgError{Func: fn, Field: "SpillBucketBits",
			Reason: fmt.Sprintf("%d; must be in [1, 16] (0 selects the planned fanout)", opt.SpillBucketBits)}
	}
	if opt.SpillMergeWidth < 0 || opt.SpillMergeWidth > 16 {
		return &ArgError{Func: fn, Field: "SpillMergeWidth",
			Reason: fmt.Sprintf("%d; must be in [2, 16] (0 selects the planned width)", opt.SpillMergeWidth)}
	}
	if opt.MaxSpillBytes < 0 {
		return &ArgError{Func: fn, Field: "MaxSpillBytes",
			Reason: fmt.Sprintf("%d; must be non-negative (0 means unlimited)", opt.MaxSpillBytes)}
	}
	return nil
}

// validateWorkload checks the Workload ranges Recommend documents: N at
// least 1, KeyBits one of 0/32/64, DomainBits in [0, 64].
func validateWorkload(fn string, w Workload) *ArgError {
	if w.N < 1 {
		return &ArgError{Func: fn, Field: "N",
			Reason: fmt.Sprintf("%d; must be at least 1", w.N)}
	}
	switch w.KeyBits {
	case 0, 32, 64:
	default:
		return &ArgError{Func: fn, Field: "KeyBits",
			Reason: fmt.Sprintf("%d; must be 32, 64, or 0 (unknown)", w.KeyBits)}
	}
	if w.DomainBits < 0 || w.DomainBits > 64 {
		return &ArgError{Func: fn, Field: "DomainBits",
			Reason: fmt.Sprintf("%d; must be in [0, 64] (0 means unknown)", w.DomainBits)}
	}
	return nil
}

// validateFanout checks a partition function's fanout.
func validateFanout(fn string, fanout int) *ArgError {
	if fanout < 1 {
		return &ArgError{Func: fn, Field: "fn",
			Reason: fmt.Sprintf("fanout %d; must be at least 1", fanout)}
	}
	return nil
}

// validateThreads checks an explicit thread-count parameter.
func validateThreads(fn string, threads int) *ArgError {
	if threads < 0 {
		return &ArgError{Func: fn, Field: "threads",
			Reason: fmt.Sprintf("%d; must be non-negative (0 selects single-threaded)", threads)}
	}
	return nil
}

// mustValid is the legacy entry points' bridge to the shared validator:
// they keep their panicking contract, now raising the same typed *ArgError
// the Try API returns.
func mustValid(err *ArgError) {
	if err != nil {
		panic(err)
	}
}

// tryRun is the hardened-execution harness shared by the Try entry points:
// it arms a (workspace-pooled) cancellation control under ctx, runs body
// with it, and converts whatever unwinds — a cooperative cancellation bail,
// a contained worker panic carrying its original stack, a validation panic
// from a nested call, a workspace budget violation — into the Try API's
// error taxonomy. The body runs with panic containment on every fan-out,
// so by the time a failure reaches this frame all worker goroutines of the
// run have finished.
//
// Resource accounting: maxAux (SortOptions.MaxAuxBytes) is installed as
// the workspace's aux-byte budget for the duration of the run — when the
// caller set none and the arena carries no budget of its own, the default
// budget (half the machine's available memory) is enforced instead of
// silently over-allocating. On a contained failure the arena's
// checked-out-bytes ledger is reconciled back to the entry level, because
// buffers in flight at the panic were abandoned to the GC on the unwind.
func tryRun(op string, ctx context.Context, w *Workspace, maxAux int64, body func(ctl *hard.Ctl)) (err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if e := ctx.Err(); e != nil {
		return e
	}
	iw := w.internal()
	preAux := int64(iw.AuxBytes())
	budgeted, prevBudget := false, int64(0)
	if iw != nil {
		if maxAux > 0 {
			budgeted, prevBudget = true, iw.SetBudget(maxAux)
		} else if iw.Budget() == 0 {
			budgeted, prevBudget = true, iw.SetBudget(tune.DefaultAuxBudget())
		}
	}
	ctl := ws.Scratch[hard.Ctl](iw, ws.SlotCtl)
	ctl.Reset(ctx)
	defer func() {
		e := recover()
		// Safe to pool again: containment drained every goroutine that
		// could still observe this Ctl before re-raising.
		ws.PutScratch(iw, ws.SlotCtl, ctl)
		if budgeted {
			iw.SetBudget(prevBudget)
		}
		if e != nil {
			iw.ReconcileAux(preAux)
			err = asTryError(op, e)
		}
	}()
	body(ctl)
	return nil
}

// asTryError maps a recovered unwind value onto the Try error taxonomy.
func asTryError(op string, e any) error {
	if cause, ok := hard.BailCause(e); ok {
		// Cooperative cancellation: context.Canceled, DeadlineExceeded, or
		// (never normally surfacing past containment) the sibling-stop
		// sentinel.
		return cause
	}
	if pe, ok := e.(*hard.PanicError); ok {
		if ae, ok := pe.Val.(*ArgError); ok {
			return ae
		}
		if be, ok := pe.Val.(*ws.BudgetError); ok {
			return &ResourceError{Op: op, Need: be.Need, InUse: be.InUse, Budget: be.Budget}
		}
		return &InternalError{Op: op, Value: pe.Val, Stack: pe.Stack}
	}
	if ae, ok := e.(*ArgError); ok {
		return ae
	}
	if be, ok := e.(*ws.BudgetError); ok {
		return &ResourceError{Op: op, Need: be.Need, InUse: be.InUse, Budget: be.Budget}
	}
	return &InternalError{Op: op, Value: e, Stack: debug.Stack()}
}

// meteredScratchPair is scratchPair for the Try bodies: when no arena is
// metering acquisitions (opt.Workspace nil), the linear tmp columns —
// the dominant auxiliary cost of the non-in-place sorts — are checked
// against the run's budget here, so a budget-less allocation cannot
// silently exceed MaxAuxBytes (or the default half-of-available budget).
// With an arena, its own ledger enforces the budget and this is a plain
// scratchPair.
func meteredScratchPair[K Key](opt *SortOptions, n int) ([]K, []K, *ws.Workspace) {
	if optWorkspace(opt) == nil {
		var z K
		need := 2 * int64(n) * int64(unsafe.Sizeof(z))
		budget := optMaxAux(opt)
		if budget == 0 {
			budget = tune.DefaultAuxBudget()
		}
		if budget > 0 && need > budget {
			panic(&ws.BudgetError{Need: need, InUse: 0, Budget: budget})
		}
	}
	return scratchPair[K](opt, n)
}

// optMaxAux returns opt's auxiliary-memory cap (nil-safe).
func optMaxAux(opt *SortOptions) int64 {
	if opt == nil {
		return 0
	}
	return opt.MaxAuxBytes
}

// optWorkspace returns opt's workspace (nil-safe).
func optWorkspace(opt *SortOptions) *Workspace {
	if opt == nil {
		return nil
	}
	return opt.Workspace
}

// TrySortLSB is SortLSB returning errors instead of panicking: argument
// problems come back as *ArgError, contained worker panics as
// *InternalError. On error keys/vals hold a permutation of the input (in
// unspecified order) whenever the failure struck at an interruption point
// — always the case for cancellation and injected faults.
func TrySortLSB[K Key](keys, vals []K, opt *SortOptions) error {
	return TrySortLSBCtx(context.Background(), keys, vals, opt)
}

// TrySortLSBCtx is TrySortLSB under a context: cancellation is observed at
// pass boundaries and between chunks of parallel loops (bounded latency),
// unwinds cooperatively leaving keys/vals a permutation of the input, and
// returns ctx.Err().
func TrySortLSBCtx[K Key](ctx context.Context, keys, vals []K, opt *SortOptions) error {
	const op = "TrySortLSB"
	if err := validatePairs(op, "keys", "vals", keys, vals); err != nil {
		return err
	}
	if err := validateOptions(op, opt); err != nil {
		return err
	}
	return tryRun(op, ctx, optWorkspace(opt), optMaxAux(opt), func(ctl *hard.Ctl) {
		tmpK, tmpV, iw := meteredScratchPair[K](opt, len(keys))
		defer func() {
			ws.PutKeys(iw, tmpK)
			ws.PutKeys(iw, tmpV)
		}()
		opt, _ := autotune(keys, opt, tune.AlgoLSB, true, false)
		io, _ := opt.toInternal()
		io.Ctl = ctl
		sortalgo.LSB(keys, vals, tmpK, tmpV, io)
	})
}

// TrySortMSB is SortMSB returning errors instead of panicking; see
// TrySortLSB for the error and restore contract.
func TrySortMSB[K Key](keys, vals []K, opt *SortOptions) error {
	return TrySortMSBCtx(context.Background(), keys, vals, opt)
}

// TrySortMSBCtx is TrySortMSB under a context; see TrySortLSBCtx.
func TrySortMSBCtx[K Key](ctx context.Context, keys, vals []K, opt *SortOptions) error {
	const op = "TrySortMSB"
	if err := validatePairs(op, "keys", "vals", keys, vals); err != nil {
		return err
	}
	if err := validateOptions(op, opt); err != nil {
		return err
	}
	return tryRun(op, ctx, optWorkspace(opt), optMaxAux(opt), func(ctl *hard.Ctl) {
		opt, _ := autotune(keys, opt, tune.AlgoMSB, false, true)
		io, _ := opt.toInternal()
		io.Ctl = ctl
		sortalgo.MSB(keys, vals, io)
	})
}

// TrySortCmp is SortCMP returning errors instead of panicking; see
// TrySortLSB for the error and restore contract.
func TrySortCmp[K Key](keys, vals []K, opt *SortOptions) error {
	return TrySortCmpCtx(context.Background(), keys, vals, opt)
}

// TrySortCmpCtx is TrySortCmp under a context; see TrySortLSBCtx.
func TrySortCmpCtx[K Key](ctx context.Context, keys, vals []K, opt *SortOptions) error {
	const op = "TrySortCmp"
	if err := validatePairs(op, "keys", "vals", keys, vals); err != nil {
		return err
	}
	if err := validateOptions(op, opt); err != nil {
		return err
	}
	return tryRun(op, ctx, optWorkspace(opt), optMaxAux(opt), func(ctl *hard.Ctl) {
		eff, plan := autotune(keys, opt, tune.AlgoCMP, false, false)
		io, _ := eff.toInternal()
		io.Ctl = ctl
		if cmpInPlace[K](eff, plan, len(keys)) {
			sortalgo.CMP[K](keys, vals, nil, nil, io)
			return
		}
		tmpK, tmpV, iw := meteredScratchPair[K](eff, len(keys))
		defer func() {
			ws.PutKeys(iw, tmpK)
			ws.PutKeys(iw, tmpV)
		}()
		sortalgo.CMP(keys, vals, tmpK, tmpV, io)
	})
}

// TryPartition is Partition returning errors instead of panicking. On
// error src is untouched (the scatter only writes dst) and the returned
// histogram is nil.
func TryPartition[K Key, F PartitionFunc[K]](srcKeys, srcVals, dstKeys, dstVals []K, fn F, threads int) ([]int, error) {
	return TryPartitionCtx(context.Background(), srcKeys, srcVals, dstKeys, dstVals, fn, threads)
}

// TryPartitionCtx is TryPartition under a context; cancellation is
// observed between chunks of the parallel histogram and scatter loops.
func TryPartitionCtx[K Key, F PartitionFunc[K]](ctx context.Context, srcKeys, srcVals, dstKeys, dstVals []K, fn F, threads int) ([]int, error) {
	const op = "TryPartition"
	if err := validatePairs(op, "srcKeys", "srcVals", srcKeys, srcVals); err != nil {
		return nil, err
	}
	if err := validatePairs(op, "dstKeys", "dstVals", dstKeys, dstVals); err != nil {
		return nil, err
	}
	if len(srcKeys) != len(dstKeys) {
		return nil, &ArgError{Func: op, Field: "dstKeys",
			Reason: fmt.Sprintf("length %d does not match srcKeys length %d", len(dstKeys), len(srcKeys))}
	}
	if err := validateThreads(op, threads); err != nil {
		return nil, err
	}
	if err := validateFanout(op, fn.Fanout()); err != nil {
		return nil, err
	}
	var hist []int
	err := tryRun(op, ctx, nil, 0, func(ctl *hard.Ctl) {
		t := threads
		if t < 1 {
			t = 1
		}
		hist = part.ParallelNonInPlaceCtl(nil, srcKeys, srcVals, dstKeys, dstVals, fn, t, ctl)
	})
	if err != nil {
		return nil, err
	}
	return hist, nil
}
